//! Property-based tests of sideways cracking's core invariants:
//! alignment, bit-vector plans, and partial-map equivalence.
//!
//! The workspace builds offline, so instead of `proptest` these
//! properties are driven by a deterministic seeded PRNG: every test runs
//! a fixed number of randomized cases and reports the failing case seed
//! in its panic message.

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::types::{RangePred, Val};
use crackdb_core::{MapSet, PartialSet};
use crackdb_rng::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashSet;

const CASES: u64 = 64;

/// Run `f` once per case with a per-case deterministic generator.
fn cases(seed: u64, mut f: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15)));
        f(&mut rng);
    }
}

fn vec_of(rng: &mut StdRng, lo: Val, hi: Val, min_len: usize, max_len: usize) -> Vec<Val> {
    let len = rng.gen_range(min_len..max_len);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

fn table(cols: Vec<Vec<Val>>) -> Table {
    let mut t = Table::new();
    for (i, c) in cols.into_iter().enumerate() {
        t.add_column(format!("a{i}"), Column::new(c));
    }
    t
}

fn pred(lo: Val, width: Val) -> RangePred {
    RangePred::open(lo, lo + width + 1)
}

/// After any interleaving of sideways selects over two maps, both maps
/// hold identical heads (physical alignment) and answer consistently
/// with a naive scan.
#[test]
fn maps_stay_aligned() {
    cases(0xA11CE, |rng| {
        let a = vec_of(rng, 0, 60, 2, 100);
        let n = a.len();
        let nq = rng.gen_range(1usize..15);
        let b: Vec<Val> = (0..n as Val).map(|i| i + 1000).collect();
        let c: Vec<Val> = (0..n as Val).map(|i| i + 2000).collect();
        let t = table(vec![a.clone(), b, c]);
        let mut set = MapSet::new(0, n, HashSet::new());
        for _ in 0..nq {
            let p = pred(rng.gen_range(0i64..60), rng.gen_range(0i64..30));
            let attr = 1 + rng.gen_range(0usize..2);
            let range = set.sideways_select(&t, attr, &p);
            let got: HashSet<Val> = set.view_tail(attr, range).iter().copied().collect();
            let expected: HashSet<Val> = (0..n)
                .filter(|&i| p.matches(a[i]))
                .map(|i| t.column(attr).get(i as u32))
                .collect();
            assert_eq!(got, expected);
            // Alignment invariant: maps whose cursors point at the same
            // tape position are physically identical. (A map unused by
            // recent queries deliberately lags — it aligns on demand.)
            if let (Some(m1), Some(m2)) = (set.map(1), set.map(2)) {
                if m1.cursor == m2.cursor {
                    assert_eq!(m1.arr.head(), m2.arr.head());
                }
            }
        }
    });
}

/// Conjunctive bit-vector plans equal naive evaluation for any pair of
/// predicates.
#[test]
fn conjunctive_plans_correct() {
    cases(0xC0171, |rng| {
        let a = vec_of(rng, 0, 40, 2, 80);
        let n = a.len();
        let b: Vec<Val> = a.iter().map(|v| (v * 7 + 3) % 40).collect();
        let d: Vec<Val> = (0..n as Val).collect();
        let t = table(vec![a.clone(), b.clone(), d]);
        let mut set = MapSet::new(0, n, HashSet::new());
        let nq = rng.gen_range(1usize..10);
        for _ in 0..nq {
            let ap = pred(rng.gen_range(0i64..40), rng.gen_range(0i64..20));
            let bp = pred(rng.gen_range(0i64..40), rng.gen_range(0i64..20));
            let (_, bv) = set.select_create_bv(&t, 1, &ap, &bp);
            let mut got = Vec::new();
            set.reconstruct_with(&t, 2, &ap, &bv, |v| got.push(v));
            got.sort_unstable();
            let mut expected: Vec<Val> = (0..n)
                .filter(|&i| ap.matches(a[i]) && bp.matches(b[i]))
                .map(|i| i as Val)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        }
    });
}

/// Partial maps under any budget answer exactly like a naive scan, and
/// never exceed the budget by more than one in-flight area fetch per
/// touched map.
#[test]
fn partial_maps_budget_correct() {
    cases(0xB4D6E7, |rng| {
        let a = vec_of(rng, 0, 50, 4, 120);
        let n = a.len();
        let budget_frac = rng.gen_range(1usize..4);
        let cols: Vec<Vec<Val>> = (0..4)
            .map(|c| {
                if c == 0 {
                    a.clone()
                } else {
                    (0..n as Val).map(|i| i + 1000 * c as Val).collect()
                }
            })
            .collect();
        let t = table(cols);
        let budget = (n * budget_frac).max(4);
        let mut set = PartialSet::new(0);
        set.budget = Some(budget);
        let nq = rng.gen_range(1usize..20);
        for _ in 0..nq {
            let p = pred(rng.gen_range(0i64..50), rng.gen_range(0i64..25));
            let attr = 1 + rng.gen_range(0usize..3);
            let mut got = Vec::new();
            set.select_project_with(&t, &p, &[attr], |_, v| got.push(v))
                .unwrap();
            got.sort_unstable();
            let mut expected: Vec<Val> = (0..n)
                .filter(|&i| p.matches(a[i]))
                .map(|i| t.column(attr).get(i as u32))
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
            assert!(
                set.usage() <= budget + 3 * n,
                "usage {} far exceeds budget {}",
                set.usage(),
                budget
            );
        }
    });
}

/// Spill round-trip property: a partial set with a spill tier and a
/// tiny budget — so chunks constantly serialize to disk, reload and
/// un-merge — answers bit-for-bit like a never-evicted set and a naive
/// scan, and `usage() <= budget` holds *exactly* after every query
/// (spilled tuples are disk-resident and must not count).
#[test]
fn spilled_partial_sets_match_never_evicted() {
    use crackdb_core::SpillTier;
    use std::sync::atomic::{AtomicU64, Ordering};
    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    cases(0x5B111ED, |rng| {
        let a = vec_of(rng, 0, 50, 8, 120);
        let n = a.len();
        let cols: Vec<Vec<Val>> = (0..4)
            .map(|c| {
                if c == 0 {
                    a.clone()
                } else {
                    (0..n as Val).map(|i| i * 13 + 1000 * c as Val).collect()
                }
            })
            .collect();
        let t = table(cols);
        let budget = (n / rng.gen_range(3usize..8)).max(8);
        let dir = std::env::temp_dir().join(format!(
            "crackdb-prop-spill-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut cold = PartialSet::new(0);
        cold.budget = Some(budget);
        cold.set_spill(Some(SpillTier::new(dir, "prop")));
        let mut hot = PartialSet::new(0);
        let nq = rng.gen_range(4usize..20);
        for _ in 0..nq {
            let p = pred(rng.gen_range(0i64..50), rng.gen_range(0i64..25));
            let attr = 1 + rng.gen_range(0usize..3);
            let mut got_cold = Vec::new();
            cold.select_project_with(&t, &p, &[attr], |_, v| got_cold.push(v))
                .unwrap();
            let mut got_hot = Vec::new();
            hot.select_project_with(&t, &p, &[attr], |_, v| got_hot.push(v))
                .unwrap();
            got_cold.sort_unstable();
            got_hot.sort_unstable();
            assert_eq!(got_cold, got_hot, "spilled answers drift from in-RAM");
            let mut expected: Vec<Val> = (0..n)
                .filter(|&i| p.matches(a[i]))
                .map(|i| t.column(attr).get(i as u32))
                .collect();
            expected.sort_unstable();
            assert_eq!(got_cold, expected, "spilled answers drift from scan");
            assert!(
                cold.usage() <= budget,
                "resident usage {} exceeds budget {} exactly after a query",
                cold.usage(),
                budget
            );
        }
    });
}

/// The §3.3 histogram estimate always brackets the true result size
/// between its lower and upper bounds.
#[test]
fn histogram_bounds_hold() {
    cases(0x415706, |rng| {
        let a = vec_of(rng, 0, 100, 2, 150);
        let n = a.len();
        let b: Vec<Val> = (0..n as Val).collect();
        let t = table(vec![a.clone(), b]);
        let mut set = MapSet::new(0, n, HashSet::new());
        let nq = rng.gen_range(1usize..10);
        for _ in 0..nq {
            set.sideways_select(
                &t,
                1,
                &pred(rng.gen_range(0i64..100), rng.gen_range(0i64..40)),
            );
        }
        let p = pred(rng.gen_range(0i64..100), rng.gen_range(0i64..40));
        let truth = a.iter().filter(|&&v| p.matches(v)).count();
        let m = set.map(1).expect("map created");
        let est = m.arr.index().estimate_size(&p, m.arr.len(), (0, 100));
        assert!(est.lower <= truth, "lower {} > truth {}", est.lower, truth);
        assert!(est.upper >= truth, "upper {} < truth {}", est.upper, truth);
        assert!(est.estimate >= est.lower as f64 - 1e-9);
        assert!(est.estimate <= est.upper as f64 + 1e-9);
    });
}

/// A spilled chunk round-trips into a replica that replays the rest of
/// its area tape bit-identically: the spill format preserves everything
/// replay depends on (cursor, index shell, access bookkeeping), and
/// every logged crack carries the effective policy it originally ran
/// under, so mixed-policy tapes (adaptive advisor switching mid-run)
/// reproduce exactly.
#[test]
fn spill_reload_replays_mixed_policy_tapes_bit_identically() {
    use crackdb_core::partial::spill::{decode_chunk, encode_chunk};
    use crackdb_core::partial::Chunk;
    use crackdb_core::AreaEntry;
    use crackdb_cracking::CrackPolicy;

    cases(0x5B111, |rng| {
        let head = vec_of(rng, 0, 200, 8, 120);
        let n = head.len();
        let tail: Vec<Val> = (0..n as Val).map(|i| i + 5000).collect();
        let t = table(vec![head.clone(), tail.clone()]);
        let (head_col, tail_col) = (t.column(0), t.column(1));

        // A tape of cracks logged under a mix of effective policies, as
        // an adaptive advisor switching mid-run would leave behind.
        let policies = [
            CrackPolicy::Standard,
            CrackPolicy::stochastic(),
            CrackPolicy::coarse(),
            CrackPolicy::CoarseGranular { min_piece: 4 },
        ];
        let tape: Vec<AreaEntry> = (0..rng.gen_range(2usize..12))
            .map(|_| {
                let p = pred(rng.gen_range(0i64..200), rng.gen_range(0i64..80));
                AreaEntry::Crack(p, policies[rng.gen_range(0usize..policies.len())])
            })
            .collect();

        // Replay a prefix, then spill.
        let mut live = Chunk::seed(head.clone(), tail.clone(), None);
        let split = rng.gen_range(0usize..=tape.len());
        live.align_to(&tape, split, head_col, tail_col);
        live.accesses = rng.gen_range(0u64..50);
        live.last_access = rng.gen_range(0u64..1000);

        let mut reloaded =
            decode_chunk(&encode_chunk(&live), "proptest").expect("spill round-trip decodes");
        assert_eq!(reloaded.cursor, live.cursor, "cursor survives the spill");
        assert_eq!(reloaded.accesses, live.accesses);
        assert_eq!(reloaded.last_access, live.last_access);
        assert_eq!(reloaded.tail(), live.tail());

        // Both finish the tape; a reloaded chunk must be
        // indistinguishable from one that never left memory.
        live.align_to(&tape, tape.len(), head_col, tail_col);
        if reloaded.head_dropped() {
            reloaded.restore_head(head.clone());
        }
        reloaded.align_to(&tape, tape.len(), head_col, tail_col);
        assert_eq!(reloaded.head(), live.head(), "replayed heads diverged");
        assert_eq!(reloaded.tail(), live.tail(), "replayed tails diverged");
        assert_eq!(reloaded.index().len(), live.index().len());
    });
}
