//! The physical reorganization kernels: crack-in-two and crack-in-three.
//!
//! These are the two algorithms of the original Database Cracking paper
//! (Idreos et al., CIDR 2007) that both selection cracking and sideways
//! cracking reuse (§3.1 of the SIGMOD'09 paper). They partition a piece of
//! a two-column array *in place*, swapping head and tail values together so
//! the columns stay positionally aligned.
//!
//! The kernels are generic over the tail type: cracker columns carry
//! `RowId` tails, cracker maps carry `Val` tails, and head-only arrays use
//! a `()` tail which compiles to nothing.

use crackdb_columnstore::types::Val;

/// Which side of a boundary value belongs to the left (lower) piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundKind {
    /// Left piece holds values `< v`; right piece holds `>= v`.
    Lt,
    /// Left piece holds values `<= v`; right piece holds `> v`.
    Le,
}

impl BoundKind {
    /// Does `v` belong to the left piece of a boundary `(pivot, self)`?
    #[inline(always)]
    pub fn belongs_left(self, v: Val, pivot: Val) -> bool {
        match self {
            BoundKind::Lt => v < pivot,
            BoundKind::Le => v <= pivot,
        }
    }
}

/// Partition `head[range]` (and `tail[range]` alongside) around
/// `(pivot, kind)`. Returns the split position: after the call, elements
/// in `[range.start, split)` belong left of the boundary and
/// `[split, range.end)` belong right.
///
/// This is crack-in-two: a single Hoare-style pass with paired swaps.
pub fn crack_in_two<T: Copy>(
    head: &mut [Val],
    tail: &mut [T],
    start: usize,
    end: usize,
    pivot: Val,
    kind: BoundKind,
) -> usize {
    debug_assert!(start <= end && end <= head.len());
    debug_assert_eq!(head.len(), tail.len());
    let mut lo = start;
    let mut hi = end;
    while lo < hi {
        if kind.belongs_left(head[lo], pivot) {
            lo += 1;
        } else {
            hi -= 1;
            head.swap(lo, hi);
            tail.swap(lo, hi);
        }
    }
    lo
}

/// Three-way partition of `head[range]` into `< lo-boundary`, middle, and
/// `> hi-boundary` regions in a single pass (Dutch national flag).
///
/// `lo_bound = (v1, k1)` separates left from middle: values for which
/// `k1.belongs_left(v, v1)` go left. `hi_bound = (v2, k2)` separates middle
/// from right: values for which `!k2.belongs_left(v, v2)` go right.
/// Returns `(split1, split2)` with left `[start, split1)`, middle
/// `[split1, split2)`, right `[split2, end)`.
pub fn crack_in_three<T: Copy>(
    head: &mut [Val],
    tail: &mut [T],
    start: usize,
    end: usize,
    lo_bound: (Val, BoundKind),
    hi_bound: (Val, BoundKind),
) -> (usize, usize) {
    debug_assert!(start <= end && end <= head.len());
    let (v1, k1) = lo_bound;
    let (v2, k2) = hi_bound;
    let mut lo = start;
    let mut mid = start;
    let mut hi = end;
    while mid < hi {
        let v = head[mid];
        if k1.belongs_left(v, v1) {
            head.swap(lo, mid);
            tail.swap(lo, mid);
            lo += 1;
            mid += 1;
        } else if !k2.belongs_left(v, v2) {
            hi -= 1;
            head.swap(mid, hi);
            tail.swap(mid, hi);
        } else {
            mid += 1;
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_two(head: &[Val], pivot: Val, kind: BoundKind) {
        let mut h = head.to_vec();
        let mut t: Vec<usize> = (0..h.len()).collect();
        let orig = h.clone();
        let n = h.len();
        let split = crack_in_two(&mut h, &mut t, 0, n, pivot, kind);
        for (i, &v) in h.iter().enumerate() {
            if i < split {
                assert!(kind.belongs_left(v, pivot), "{v} at {i} should be right");
            } else {
                assert!(!kind.belongs_left(v, pivot), "{v} at {i} should be left");
            }
            // Tail moved with head: tail value is the original position.
            assert_eq!(orig[t[i]], v);
        }
        let mut sorted_orig = orig;
        let mut sorted_new = h;
        sorted_orig.sort_unstable();
        sorted_new.sort_unstable();
        assert_eq!(sorted_orig, sorted_new, "multiset changed");
    }

    #[test]
    fn crack_in_two_lt_and_le() {
        let data = [12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16];
        check_two(&data, 10, BoundKind::Lt);
        check_two(&data, 10, BoundKind::Le);
        check_two(&data, 12, BoundKind::Lt);
        check_two(&data, 12, BoundKind::Le);
    }

    #[test]
    fn crack_in_two_edge_pivots() {
        let data = [5, 5, 5];
        check_two(&data, 5, BoundKind::Lt); // all right
        check_two(&data, 5, BoundKind::Le); // all left
        check_two(&data, 0, BoundKind::Lt); // all right
        check_two(&data, 100, BoundKind::Le); // all left
    }

    #[test]
    fn crack_in_two_subrange_only() {
        let mut h = vec![9, 1, 8, 2, 7, 3];
        let mut t = vec![0u32, 1, 2, 3, 4, 5];
        let split = crack_in_two(&mut h, &mut t, 2, 5, 5, BoundKind::Lt);
        // Outside the range untouched:
        assert_eq!(h[0], 9);
        assert_eq!(h[1], 1);
        assert_eq!(h[5], 3);
        for (i, &v) in h.iter().enumerate().take(5).skip(2) {
            if i < split {
                assert!(v < 5);
            } else {
                assert!(v >= 5);
            }
        }
    }

    #[test]
    fn crack_in_three_partitions() {
        // Reproduce Figure 1: crack 10 < A < 15 over R.A.
        let mut h = vec![12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16];
        let mut t: Vec<u32> = (0..13).collect();
        let n = h.len();
        let (s1, s2) = crack_in_three(
            &mut h,
            &mut t,
            0,
            n,
            (10, BoundKind::Le), // left: <= 10
            (15, BoundKind::Lt), // right: >= 15
        );
        // Paper Figure 1 labels piece 2 as starting at (1-indexed)
        // position 7, i.e. six values are <= 10: {3, 5, 9, 7, 4, 2}.
        assert_eq!(s1, 6);
        for &v in &h[..s1] {
            assert!(v <= 10);
        }
        for &v in &h[s1..s2] {
            assert!(v > 10 && v < 15);
        }
        for &v in &h[s2..] {
            assert!(v >= 15);
        }
        // Middle piece holds exactly {12, 11}.
        let mut mid: Vec<_> = h[s1..s2].to_vec();
        mid.sort_unstable();
        assert_eq!(mid, vec![11, 12]);
    }

    #[test]
    fn crack_in_three_empty_middle() {
        let mut h = vec![1, 2, 8, 9];
        let mut t = vec![(); 4];
        let (s1, s2) = crack_in_three(&mut h, &mut t, 0, 4, (5, BoundKind::Le), (5, BoundKind::Lt));
        assert_eq!(s1, s2);
    }

    #[test]
    fn crack_in_three_matches_two_crack_in_twos() {
        let data: Vec<Val> = vec![42, 17, 99, 3, 55, 23, 77, 8, 64, 31, 12, 88, 45, 6];
        let mut h3 = data.clone();
        let mut t3 = vec![(); h3.len()];
        let n = h3.len();
        let (a3, b3) = crack_in_three(
            &mut h3,
            &mut t3,
            0,
            n,
            (20, BoundKind::Le),
            (60, BoundKind::Lt),
        );

        let mut h2 = data.clone();
        let mut t2 = vec![(); h2.len()];
        let a2 = crack_in_two(&mut h2, &mut t2, 0, n, 20, BoundKind::Le);
        let b2 = crack_in_two(&mut h2, &mut t2, a2, n, 60, BoundKind::Lt);
        assert_eq!((a3, b3), (a2, b2));
        // Same piece *sets* (order within pieces may differ).
        for (x, y) in [(0, a3), (a3, b3), (b3, n)] {
            let mut p3 = h3[x..y].to_vec();
            let mut p2 = h2[x..y].to_vec();
            p3.sort_unstable();
            p2.sort_unstable();
            assert_eq!(p3, p2);
        }
    }
}
