//! The physical reorganization kernels: crack-in-two and crack-in-three.
//!
//! These are the two algorithms of the original Database Cracking paper
//! (Idreos et al., CIDR 2007) that both selection cracking and sideways
//! cracking reuse (§3.1 of the SIGMOD'09 paper). They partition a piece of
//! a two-column array *in place*, swapping head and tail values together so
//! the columns stay positionally aligned.
//!
//! Each kernel exists in two physical implementations selected at process
//! start by [`crate::kernel::active_kernel`] (`CRACKDB_KERNEL`):
//!
//! * the **scalar** variants ([`crack_in_two_scalar`],
//!   [`crack_in_three_scalar`]) are the paper's element-at-a-time loops —
//!   one unpredictable branch per tuple;
//! * the **block** variants ([`crack_in_two_block`],
//!   [`crack_in_three_block`]) are BlockQuicksort-style: membership of a
//!   64-tuple block is computed as a branch-free bit mask, the mask bits
//!   are the buffered offsets-to-swap, and swaps are paired between a
//!   left and a right block so every tuple is moved at most once.
//!
//! Both implementations return identical split positions (the split is
//! determined by the *count* of qualifying tuples, which no reordering
//! changes) and permutation-equivalent piece contents; the equivalence is
//! enforced by seeded property tests in `tests/kernel_props.rs`. Callers
//! account the same touched-tuple cost (`end - start`) no matter which
//! kernel executes, so robustness metrics stay comparable across kernels.
//!
//! The kernels are generic over the tail type: cracker columns carry
//! `RowId` tails, cracker maps carry `Val` tails, and head-only arrays use
//! a `()` tail which compiles to nothing.

use crate::kernel::{active_kernel, CrackKernel};
use crackdb_columnstore::types::Val;

/// Which side of a boundary value belongs to the left (lower) piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundKind {
    /// Left piece holds values `< v`; right piece holds `>= v`.
    Lt,
    /// Left piece holds values `<= v`; right piece holds `> v`.
    Le,
}

impl BoundKind {
    /// Does `v` belong to the left piece of a boundary `(pivot, self)`?
    #[inline(always)]
    pub fn belongs_left(self, v: Val, pivot: Val) -> bool {
        match self {
            BoundKind::Lt => v < pivot,
            BoundKind::Le => v <= pivot,
        }
    }
}

/// Partition `head[range]` (and `tail[range]` alongside) around
/// `(pivot, kind)`. Returns the split position: after the call, elements
/// in `[range.start, split)` belong left of the boundary and
/// `[split, range.end)` belong right.
///
/// Dispatches to the process-wide kernel selection (`CRACKDB_KERNEL`);
/// see the module docs for the equivalence guarantees.
#[inline]
pub fn crack_in_two<T: Copy>(
    head: &mut [Val],
    tail: &mut [T],
    start: usize,
    end: usize,
    pivot: Val,
    kind: BoundKind,
) -> usize {
    match active_kernel() {
        CrackKernel::Scalar => crack_in_two_scalar(head, tail, start, end, pivot, kind),
        CrackKernel::Block => crack_in_two_block(head, tail, start, end, pivot, kind),
    }
}

/// Three-way partition of `head[range]` into `< lo-boundary`, middle, and
/// `> hi-boundary` regions (dispatching like [`crack_in_two`]).
///
/// `lo_bound = (v1, k1)` separates left from middle: values for which
/// `k1.belongs_left(v, v1)` go left. `hi_bound = (v2, k2)` separates middle
/// from right: values for which `!k2.belongs_left(v, v2)` go right.
/// Returns `(split1, split2)` with left `[start, split1)`, middle
/// `[split1, split2)`, right `[split2, end)`.
///
/// The bounds should be consistent — no value may classify both left
/// and right, which under the boundary-key ordering is exactly
/// `lo_bound < hi_bound` (callers derive the bounds from strictly
/// ordered cracker-index keys, so this holds by construction). A
/// contradictory or degenerate pair (`lo_bound >= hi_bound`, e.g. the
/// equal-value `(v,Le)` lo / `(v,Lt)` hi combo, where `v` itself
/// classifies both left and right) is resolved *deterministically* in
/// release and debug builds alike: the range is two-way partitioned at
/// `hi_bound` and the middle piece is empty — identical under both
/// kernels, so a release build can never silently diverge where a
/// debug build would have asserted.
#[inline]
pub fn crack_in_three<T: Copy>(
    head: &mut [Val],
    tail: &mut [T],
    start: usize,
    end: usize,
    lo_bound: (Val, BoundKind),
    hi_bound: (Val, BoundKind),
) -> (usize, usize) {
    if lo_bound >= hi_bound {
        // Contradictory bounds cannot be expressed as a three-way
        // partition (the per-element left/right tests overlap, and the
        // scalar and block kernels break the tie differently). Fall
        // back to a single two-way crack at `hi_bound`: left of it is
        // `belongs_left(hi_bound)`, the middle is empty, and both
        // kernels agree on the split by the crack-in-two count
        // invariant.
        let s = crack_in_two(head, tail, start, end, hi_bound.0, hi_bound.1);
        return (s, s);
    }
    match active_kernel() {
        CrackKernel::Scalar => crack_in_three_scalar(head, tail, start, end, lo_bound, hi_bound),
        CrackKernel::Block => crack_in_three_block(head, tail, start, end, lo_bound, hi_bound),
    }
}

// ---------------------------------------------------------------------
// Scalar kernels (the paper's loops, bit-for-bit)
// ---------------------------------------------------------------------

/// [`crack_in_two`], scalar kernel: a single Hoare-style pass with paired
/// swaps and one data-dependent branch per element.
pub fn crack_in_two_scalar<T: Copy>(
    head: &mut [Val],
    tail: &mut [T],
    start: usize,
    end: usize,
    pivot: Val,
    kind: BoundKind,
) -> usize {
    debug_assert!(start <= end && end <= head.len());
    debug_assert_eq!(head.len(), tail.len());
    let mut lo = start;
    let mut hi = end;
    while lo < hi {
        if kind.belongs_left(head[lo], pivot) {
            lo += 1;
        } else {
            hi -= 1;
            head.swap(lo, hi);
            tail.swap(lo, hi);
        }
    }
    lo
}

/// [`crack_in_three`], scalar kernel: a single Dutch-national-flag pass.
pub fn crack_in_three_scalar<T: Copy>(
    head: &mut [Val],
    tail: &mut [T],
    start: usize,
    end: usize,
    lo_bound: (Val, BoundKind),
    hi_bound: (Val, BoundKind),
) -> (usize, usize) {
    debug_assert!(start <= end && end <= head.len());
    debug_assert_eq!(head.len(), tail.len());
    debug_assert!(
        lo_bound <= hi_bound,
        "bounds must be consistent and ordered"
    );
    let (v1, k1) = lo_bound;
    let (v2, k2) = hi_bound;
    let mut lo = start;
    let mut mid = start;
    let mut hi = end;
    while mid < hi {
        let v = head[mid];
        if k1.belongs_left(v, v1) {
            head.swap(lo, mid);
            tail.swap(lo, mid);
            lo += 1;
            mid += 1;
        } else if !k2.belongs_left(v, v2) {
            hi -= 1;
            head.swap(mid, hi);
            tail.swap(mid, hi);
        } else {
            mid += 1;
        }
    }
    (lo, hi)
}

// ---------------------------------------------------------------------
// Block kernels (branch-free, mask-buffered paired swaps)
// ---------------------------------------------------------------------

/// Tuples per block: one `u64` membership mask covers exactly one block.
const BLOCK: usize = 64;

/// Branch-free membership mask of one block: bit `i` is set iff
/// `offender(blk[i])`. The loop body is comparison-as-arithmetic with an
/// unconditional shift-or — no data-dependent branches, and a shape LLVM
/// can autovectorize on stable Rust (compare + widen + reduce).
#[inline(always)]
fn offender_mask<F: Fn(Val) -> bool>(blk: &[Val], offender: F) -> u64 {
    debug_assert!(blk.len() <= BLOCK);
    let mut m = 0u64;
    for (i, &v) in blk.iter().enumerate() {
        m |= (offender(v) as u64) << i;
    }
    m
}

/// The generic block partition: `belongs_left` monomorphized per
/// [`BoundKind`] so the per-element comparison compiles to a single
/// branch-free `setcc`.
///
/// Invariants maintained: `[start, l)` fully belongs left, `[r, end)`
/// fully belongs right. Each round computes the membership masks of the
/// 64-tuple blocks at `l` and at `r - 64`, then performs paired swaps
/// between the left block's belongs-right offsets and the right block's
/// belongs-left offsets (offsets read off the masks with
/// `trailing_zeros`). A block whose mask drains is wholly resolved and
/// its pointer advances. The sub-two-block remainder falls back to the
/// scalar pass, which also computes the final split.
#[inline(always)]
fn crack_in_two_block_impl<T: Copy, F: Fn(Val) -> bool + Copy>(
    head: &mut [Val],
    tail: &mut [T],
    start: usize,
    end: usize,
    belongs_left: F,
    pivot: Val,
    kind: BoundKind,
) -> usize {
    debug_assert!(start <= end && end <= head.len());
    debug_assert_eq!(head.len(), tail.len());
    let mut l = start;
    let mut r = end;
    // Offenders still to fix inside the current left/right block.
    let mut ml: u64 = 0; // bits over [l, l + BLOCK): values belonging right
    let mut mr: u64 = 0; // bits over [r - BLOCK, r): values belonging left
    while r - l >= 2 * BLOCK {
        if ml == 0 {
            ml = offender_mask(&head[l..l + BLOCK], |v| !belongs_left(v));
            if ml == 0 {
                l += BLOCK;
                continue;
            }
        }
        if mr == 0 {
            mr = offender_mask(&head[r - BLOCK..r], belongs_left);
            if mr == 0 {
                r -= BLOCK;
                continue;
            }
        }
        // Paired swaps from the two masks: each swap fixes one offender
        // on each side, so every tuple moves at most once.
        while ml != 0 && mr != 0 {
            let i = l + ml.trailing_zeros() as usize;
            let j = r - BLOCK + mr.trailing_zeros() as usize;
            head.swap(i, j);
            tail.swap(i, j);
            ml &= ml - 1;
            mr &= mr - 1;
        }
        if ml == 0 {
            l += BLOCK;
        }
        if mr == 0 {
            r -= BLOCK;
        }
    }
    // Remainder (< 128 tuples, possibly with partially drained blocks —
    // already-fixed tuples are simply re-examined): the scalar kernel
    // finishes the range and yields the split. `[start, l)` and
    // `[r, end)` are already resolved, so the overall split equals the
    // remainder's.
    crack_in_two_scalar(head, tail, l, r, pivot, kind)
}

/// [`crack_in_two`], block kernel. Same split position as the scalar
/// kernel, permutation-equivalent piece contents.
pub fn crack_in_two_block<T: Copy>(
    head: &mut [Val],
    tail: &mut [T],
    start: usize,
    end: usize,
    pivot: Val,
    kind: BoundKind,
) -> usize {
    match kind {
        BoundKind::Lt => {
            crack_in_two_block_impl(head, tail, start, end, |v| v < pivot, pivot, kind)
        }
        BoundKind::Le => {
            crack_in_two_block_impl(head, tail, start, end, |v| v <= pivot, pivot, kind)
        }
    }
}

/// [`crack_in_three`], block kernel: a fused two-boundary variant of the
/// same block scheme. The first blocked pass partitions the whole range
/// by the *hi* boundary (left+middle | right), the second partitions the
/// surviving prefix by the *lo* boundary (left | middle) — two
/// branch-free sweeps instead of one branchy three-way loop, touching
/// `n + |left+middle|` tuples. Split positions are identical to the
/// scalar Dutch-flag pass (both are determined by value counts).
pub fn crack_in_three_block<T: Copy>(
    head: &mut [Val],
    tail: &mut [T],
    start: usize,
    end: usize,
    lo_bound: (Val, BoundKind),
    hi_bound: (Val, BoundKind),
) -> (usize, usize) {
    debug_assert!(start <= end && end <= head.len());
    debug_assert_eq!(head.len(), tail.len());
    debug_assert!(
        lo_bound <= hi_bound,
        "bounds must be consistent and ordered"
    );
    let (v2, k2) = hi_bound;
    let split2 = crack_in_two_block(head, tail, start, end, v2, k2);
    let (v1, k1) = lo_bound;
    let split1 = crack_in_two_block(head, tail, start, split2, v1, k1);
    (split1, split2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_two(head: &[Val], pivot: Val, kind: BoundKind) {
        // Both kernels, directly (the dispatcher picks one per process).
        for block in [false, true] {
            let mut h = head.to_vec();
            let mut t: Vec<usize> = (0..h.len()).collect();
            let orig = h.clone();
            let n = h.len();
            let split = if block {
                crack_in_two_block(&mut h, &mut t, 0, n, pivot, kind)
            } else {
                crack_in_two_scalar(&mut h, &mut t, 0, n, pivot, kind)
            };
            for (i, &v) in h.iter().enumerate() {
                if i < split {
                    assert!(kind.belongs_left(v, pivot), "{v} at {i} should be right");
                } else {
                    assert!(!kind.belongs_left(v, pivot), "{v} at {i} should be left");
                }
                // Tail moved with head: tail value is the original position.
                assert_eq!(orig[t[i]], v);
            }
            let mut sorted_orig = orig;
            let mut sorted_new = h;
            sorted_orig.sort_unstable();
            sorted_new.sort_unstable();
            assert_eq!(sorted_orig, sorted_new, "multiset changed");
        }
    }

    #[test]
    fn crack_in_two_lt_and_le() {
        let data = [12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16];
        check_two(&data, 10, BoundKind::Lt);
        check_two(&data, 10, BoundKind::Le);
        check_two(&data, 12, BoundKind::Lt);
        check_two(&data, 12, BoundKind::Le);
    }

    #[test]
    fn crack_in_two_edge_pivots() {
        let data = [5, 5, 5];
        check_two(&data, 5, BoundKind::Lt); // all right
        check_two(&data, 5, BoundKind::Le); // all left
        check_two(&data, 0, BoundKind::Lt); // all right
        check_two(&data, 100, BoundKind::Le); // all left
    }

    #[test]
    fn crack_in_two_blocked_sizes() {
        // Sizes that exercise the blocked main loop: whole blocks, a
        // partial remainder, all-left blocks, all-right blocks.
        let mut state = 0x1234_5678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as Val).rem_euclid(1000)
        };
        for n in [0usize, 1, 63, 64, 127, 128, 129, 500, 1024, 1000] {
            let data: Vec<Val> = (0..n).map(|_| next()).collect();
            check_two(&data, 500, BoundKind::Lt);
            check_two(&data, 500, BoundKind::Le);
            check_two(&data, 0, BoundKind::Lt);
            check_two(&data, 999, BoundKind::Le);
            // Presorted ascending and descending inputs drain whole
            // blocks on one side of the scan.
            let mut asc = data.clone();
            asc.sort_unstable();
            check_two(&asc, 500, BoundKind::Lt);
            asc.reverse();
            check_two(&asc, 500, BoundKind::Le);
        }
    }

    #[test]
    fn block_and_scalar_agree_on_splits() {
        let mut state = 0xBEEFu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as Val).rem_euclid(97)
        };
        let data: Vec<Val> = (0..777).map(|_| next()).collect();
        for pivot in [0, 13, 48, 96, 200] {
            for kind in [BoundKind::Lt, BoundKind::Le] {
                let mut h1 = data.clone();
                let mut t1: Vec<u32> = (0..777).collect();
                let mut h2 = data.clone();
                let mut t2 = t1.clone();
                let s1 = crack_in_two_scalar(&mut h1, &mut t1, 0, 777, pivot, kind);
                let s2 = crack_in_two_block(&mut h2, &mut t2, 0, 777, pivot, kind);
                assert_eq!(s1, s2, "splits agree for pivot {pivot} {kind:?}");
            }
        }
    }

    #[test]
    fn crack_in_two_subrange_only() {
        let mut h = vec![9, 1, 8, 2, 7, 3];
        let mut t = vec![0u32, 1, 2, 3, 4, 5];
        let split = crack_in_two(&mut h, &mut t, 2, 5, 5, BoundKind::Lt);
        // Outside the range untouched:
        assert_eq!(h[0], 9);
        assert_eq!(h[1], 1);
        assert_eq!(h[5], 3);
        for (i, &v) in h.iter().enumerate().take(5).skip(2) {
            if i < split {
                assert!(v < 5);
            } else {
                assert!(v >= 5);
            }
        }
    }

    #[test]
    fn block_kernel_subrange_only() {
        // A blocked-size subrange must leave both flanks untouched.
        let n = 400usize;
        let mut h: Vec<Val> = (0..n as Val).rev().collect();
        let mut t: Vec<u32> = (0..n as u32).collect();
        let orig = h.clone();
        let split = crack_in_two_block(&mut h, &mut t, 50, 350, 200, BoundKind::Lt);
        assert_eq!(&h[..50], &orig[..50], "left flank untouched");
        assert_eq!(&h[350..], &orig[350..], "right flank untouched");
        for (i, &v) in h.iter().enumerate().take(350).skip(50) {
            assert_eq!(v < 200, i < split);
        }
    }

    #[test]
    fn crack_in_three_partitions() {
        // Reproduce Figure 1: crack 10 < A < 15 over R.A.
        for block in [false, true] {
            let mut h = vec![12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16];
            let mut t: Vec<u32> = (0..13).collect();
            let n = h.len();
            let bounds = ((10, BoundKind::Le), (15, BoundKind::Lt));
            let (s1, s2) = if block {
                crack_in_three_block(&mut h, &mut t, 0, n, bounds.0, bounds.1)
            } else {
                crack_in_three_scalar(&mut h, &mut t, 0, n, bounds.0, bounds.1)
            };
            // Paper Figure 1 labels piece 2 as starting at (1-indexed)
            // position 7, i.e. six values are <= 10: {3, 5, 9, 7, 4, 2}.
            assert_eq!(s1, 6);
            for &v in &h[..s1] {
                assert!(v <= 10);
            }
            for &v in &h[s1..s2] {
                assert!(v > 10 && v < 15);
            }
            for &v in &h[s2..] {
                assert!(v >= 15);
            }
            // Middle piece holds exactly {12, 11}.
            let mut mid: Vec<_> = h[s1..s2].to_vec();
            mid.sort_unstable();
            assert_eq!(mid, vec![11, 12]);
        }
    }

    #[test]
    fn crack_in_three_empty_middle() {
        // `(5, Lt) < (5, Le)`: middle holds exactly the value 5 — none here.
        let mut h = vec![1, 2, 8, 9];
        let mut t = vec![(); 4];
        let (s1, s2) = crack_in_three(&mut h, &mut t, 0, 4, (5, BoundKind::Lt), (5, BoundKind::Le));
        assert_eq!(s1, s2);
    }

    #[test]
    fn crack_in_three_matches_two_crack_in_twos() {
        let data: Vec<Val> = vec![42, 17, 99, 3, 55, 23, 77, 8, 64, 31, 12, 88, 45, 6];
        let mut h3 = data.clone();
        let mut t3 = vec![(); h3.len()];
        let n = h3.len();
        let (a3, b3) = crack_in_three(
            &mut h3,
            &mut t3,
            0,
            n,
            (20, BoundKind::Le),
            (60, BoundKind::Lt),
        );

        let mut h2 = data.clone();
        let mut t2 = vec![(); h2.len()];
        let a2 = crack_in_two(&mut h2, &mut t2, 0, n, 20, BoundKind::Le);
        let b2 = crack_in_two(&mut h2, &mut t2, a2, n, 60, BoundKind::Lt);
        assert_eq!((a3, b3), (a2, b2));
        // Same piece *sets* (order within pieces may differ).
        for (x, y) in [(0, a3), (a3, b3), (b3, n)] {
            let mut p3 = h3[x..y].to_vec();
            let mut p2 = h2[x..y].to_vec();
            p3.sort_unstable();
            p2.sort_unstable();
            assert_eq!(p3, p2);
        }
    }

    #[test]
    fn crack_in_three_kernels_agree_on_splits() {
        let mut state = 0xACEDu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as Val).rem_euclid(500)
        };
        let data: Vec<Val> = (0..999).map(|_| next()).collect();
        for (lo, hi) in [(100, 300), (0, 499), (250, 251), (480, 499)] {
            for (k1, k2) in [
                (BoundKind::Le, BoundKind::Lt),
                (BoundKind::Lt, BoundKind::Le),
                (BoundKind::Lt, BoundKind::Lt),
                (BoundKind::Le, BoundKind::Le),
            ] {
                let mut h1 = data.clone();
                let mut t1: Vec<u32> = (0..999).collect();
                let mut h2 = data.clone();
                let mut t2 = t1.clone();
                let s = crack_in_three_scalar(&mut h1, &mut t1, 0, 999, (lo, k1), (hi, k2));
                let b = crack_in_three_block(&mut h2, &mut t2, 0, 999, (lo, k1), (hi, k2));
                assert_eq!(s, b, "splits agree for ({lo},{k1:?})..({hi},{k2:?})");
                // Piece multisets agree.
                for (x, y) in [(0, s.0), (s.0, s.1), (s.1, 999)] {
                    let mut p1 = h1[x..y].to_vec();
                    let mut p2 = h2[x..y].to_vec();
                    p1.sort_unstable();
                    p2.sort_unstable();
                    assert_eq!(p1, p2);
                }
            }
        }
    }

    /// Contradictory / degenerate bound pairs must partition
    /// deterministically in *release* builds too (this test carries no
    /// debug-only meaning: the dispatcher resolves the case before any
    /// `debug_assert`, so the same semantics are exercised under
    /// `cargo test` and `cargo test --release`). The documented
    /// resolution: two-way crack at `hi_bound`, empty middle.
    #[test]
    fn contradictory_bounds_resolve_deterministically() {
        let data: Vec<Val> = vec![9, 5, 1, 5, 7, 3, 5, 8, 0, 5, 2, 6, 4];
        // (5,Le) lo with (5,Lt) hi: the value 5 classifies both left
        // and right — the combo PR 6 could only debug_assert about.
        // Plus a plainly inverted pair.
        for (lo_b, hi_b) in [
            ((5, BoundKind::Le), (5, BoundKind::Lt)),
            ((7, BoundKind::Lt), (3, BoundKind::Le)),
        ] {
            let mut h = data.clone();
            let mut t: Vec<u32> = (0..h.len() as u32).collect();
            let n = h.len();
            let (s1, s2) = crack_in_three(&mut h, &mut t, 0, n, lo_b, hi_b);
            assert_eq!(s1, s2, "middle piece must be empty");
            let (hv, hk) = hi_b;
            for (i, &v) in h.iter().enumerate() {
                if i < s1 {
                    assert!(hk.belongs_left(v, hv), "{v} at {i} belongs right");
                } else {
                    assert!(!hk.belongs_left(v, hv), "{v} at {i} belongs left");
                }
                assert_eq!(data[t[i] as usize], v, "tail no longer paired");
            }
            // The split is count-determined, hence kernel-invariant.
            let want = data.iter().filter(|&&v| hk.belongs_left(v, hv)).count();
            assert_eq!(s1, want);
            let mut sorted = h;
            sorted.sort_unstable();
            let mut orig = data.clone();
            orig.sort_unstable();
            assert_eq!(sorted, orig, "multiset changed");
        }
    }

    #[test]
    fn offender_mask_matches_bits() {
        let vals: Vec<Val> = (0..64).collect();
        let m = offender_mask(&vals, |v| v % 3 == 0);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!((m >> i) & 1 == 1, v % 3 == 0);
        }
        // Partial blocks leave the high bits clear.
        let m = offender_mask(&vals[..10], |_| true);
        assert_eq!(m, (1 << 10) - 1);
        assert_eq!(offender_mask(&[], |_: Val| true), 0);
    }
}
