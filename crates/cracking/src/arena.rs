//! A tiny index-based slab arena: contiguous slot storage plus a free
//! list, shared by the per-column AVL node pools ([`crate::avl`]) and
//! reusable for any index-linked structure.
//!
//! Nodes refer to each other by `u32` slot index instead of `Box`
//! pointers, so a whole tree is one contiguous allocation: hot lookups
//! walk within a single cache-friendly buffer, cloning a tree is one
//! `memcpy`-ish `Vec` clone, and dropping it frees one allocation
//! instead of a pointer chase. [`Arena::clear`] keeps the allocation so
//! a recycled index (a revived chunk, a re-cracked column) rebuilds
//! without reallocating.

/// Slot index inside an [`Arena`].
pub type SlotId = u32;

/// Sentinel for "no slot" (the arena never hands this id out).
pub const NO_SLOT: SlotId = u32::MAX;

/// A contiguous slot arena with index-based handles and a free list.
///
/// Freed slots keep their old value until reused — the arena is a
/// *pool*, not an ownership tracker; callers that free slots must not
/// read them again through stale ids. Structures that only ever grow
/// and [`clear`](Arena::clear) (the cracker AVL with its lazy deletion)
/// never touch the free list at all.
#[derive(Debug, Clone, Default)]
pub struct Arena<T> {
    slots: Vec<T>,
    free: Vec<SlotId>,
}

impl<T> Arena<T> {
    /// Empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Empty arena with room for `cap` slots before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
        }
    }

    /// Number of live slots (allocated and not freed).
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// `true` when no slot is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slots the arena can hold before growing.
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Allocate a slot holding `value`, reusing a freed slot when one
    /// exists.
    #[inline]
    pub fn alloc(&mut self, value: T) -> SlotId {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = value;
                id
            }
            None => {
                assert!(
                    self.slots.len() < NO_SLOT as usize,
                    "arena overflow: more than u32::MAX slots"
                );
                self.slots.push(value);
                (self.slots.len() - 1) as SlotId
            }
        }
    }

    /// Return a slot to the free list. The value stays in place until
    /// the slot is reused; the id must not be read through afterwards.
    pub fn free(&mut self, id: SlotId) {
        debug_assert!((id as usize) < self.slots.len(), "free of unallocated slot");
        self.free.push(id);
    }

    /// Shared access to a slot.
    #[inline(always)]
    pub fn get(&self, id: SlotId) -> &T {
        &self.slots[id as usize]
    }

    /// Exclusive access to a slot.
    #[inline(always)]
    pub fn get_mut(&mut self, id: SlotId) -> &mut T {
        &mut self.slots[id as usize]
    }

    /// Every slot ever allocated (freed slots included — see the type
    /// docs), in allocation order. For whole-pool sweeps by structures
    /// that never free individual slots.
    pub fn slots(&self) -> &[T] {
        &self.slots
    }

    /// Mutable whole-pool sweep; same caveat as [`Arena::slots`].
    pub fn slots_mut(&mut self) -> &mut [T] {
        &mut self.slots
    }

    /// Drop every slot but keep the allocation for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_roundtrip() {
        let mut a = Arena::new();
        let x = a.alloc(10);
        let y = a.alloc(20);
        assert_eq!(*a.get(x), 10);
        assert_eq!(*a.get(y), 20);
        *a.get_mut(x) += 1;
        assert_eq!(*a.get(x), 11);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn free_slots_are_reused() {
        let mut a = Arena::new();
        let x = a.alloc(1);
        let _y = a.alloc(2);
        a.free(x);
        assert_eq!(a.len(), 1);
        let z = a.alloc(3);
        assert_eq!(z, x, "freed slot reused first");
        assert_eq!(*a.get(z), 3);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut a = Arena::with_capacity(64);
        for i in 0..50 {
            a.alloc(i);
        }
        let cap = a.capacity();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.capacity(), cap, "allocation survives clear");
        let id = a.alloc(7);
        assert_eq!(id, 0, "ids restart after clear");
    }

    #[test]
    fn slots_sweep_sees_allocation_order() {
        let mut a = Arena::new();
        for i in 0..5 {
            a.alloc(i * 10);
        }
        assert_eq!(a.slots(), &[0, 10, 20, 30, 40]);
        for v in a.slots_mut() {
            *v += 1;
        }
        assert_eq!(*a.get(3), 31);
    }
}
