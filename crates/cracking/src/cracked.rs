//! A generic two-column cracked array: the shared physical structure
//! behind cracker columns (tail = tuple key) and cracker maps (tail =
//! projected attribute value).

use crate::crack::{crack_in_three, crack_in_two, BoundKind};
use crate::index::{pred_keys, BoundaryKey, CrackerIndex};
use crate::kernel::{active_kernel, CrackKernel};
use crate::policy::{
    mix64, CrackPolicy, Span, DEFAULT_STOCHASTIC_MIN_PIECE, PREPARTITION_MIN_PIECE,
    PREPARTITION_TARGET_PIECE,
};
use crackdb_columnstore::radix::{cluster_by_value, value_bucket_bound};
use crackdb_columnstore::types::{RangePred, Val};

/// Parallel head/tail arrays physically reorganized by cracking, plus the
/// cracker index describing the current partitioning.
#[derive(Debug, Clone, Default)]
pub struct CrackedArray<T: Copy> {
    head: Vec<Val>,
    tail: Vec<T>,
    index: CrackerIndex,
    /// Cumulative tuples touched (scanned/swapped) by crack kernels —
    /// the robustness metric of the policy property tests and benches.
    touched: u64,
}

impl<T: Copy> CrackedArray<T> {
    /// Build from parallel head/tail vectors.
    ///
    /// # Panics
    /// If the vectors differ in length.
    pub fn new(head: Vec<Val>, tail: Vec<T>) -> Self {
        assert_eq!(head.len(), tail.len(), "head/tail length mismatch");
        CrackedArray {
            head,
            tail,
            index: CrackerIndex::new(),
            touched: 0,
        }
    }

    /// Reassemble from parts produced by [`Self::into_parts`] (used by
    /// partial sideways cracking's chunks, whose head column is
    /// droppable and therefore stored outside the array). The
    /// touched-tuple counter restarts at zero.
    pub fn from_parts(head: Vec<Val>, tail: Vec<T>, index: CrackerIndex) -> Self {
        assert_eq!(head.len(), tail.len(), "head/tail length mismatch");
        CrackedArray {
            head,
            tail,
            index,
            touched: 0,
        }
    }

    /// Cumulative count of tuples the crack kernels have scanned or
    /// swapped over this array's lifetime. Per-query deltas of this
    /// counter are the workload-robustness metric: under
    /// `Pattern::Sequential` the standard policy keeps touching O(n)
    /// tuples per query while the stochastic policy converges.
    pub fn touched(&self) -> u64 {
        self.touched
    }

    /// Disassemble into `(head, tail, index)` without copying.
    pub fn into_parts(self) -> (Vec<Val>, Vec<T>, CrackerIndex) {
        (self.head, self.tail, self.index)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// Head (selection attribute) values.
    pub fn head(&self) -> &[Val] {
        &self.head
    }

    /// Tail values.
    pub fn tail(&self) -> &[T] {
        &self.tail
    }

    /// The cracker index.
    pub fn index(&self) -> &CrackerIndex {
        &self.index
    }

    /// Mutable access to the index (storage-management paths only).
    pub fn index_mut(&mut self) -> &mut CrackerIndex {
        &mut self.index
    }

    /// Ensure a boundary exists, physically cracking the enclosing piece
    /// if needed. Returns the boundary position.
    pub fn ensure_boundary(&mut self, key: BoundaryKey) -> usize {
        if let Some(p) = self.index.position_of(key) {
            return p;
        }
        self.maybe_prepartition(key, PREPARTITION_TARGET_PIECE);
        if let Some(p) = self.index.position_of(key) {
            // A prepartition cut landed exactly on the queried boundary
            // (already promoted to query-mandated by `prepartition`).
            return p;
        }
        let (s, e) = self.index.enclosing_piece(key, self.head.len());
        let split = crack_in_two(&mut self.head, &mut self.tail, s, e, key.0, key.1);
        self.touched += (e - s) as u64;
        self.index.record(key, split);
        split
    }

    /// Radix-prepartition fast path: when the first crack would have to
    /// plough a huge uncracked piece, pay one cache-friendly counting
    /// partition (`columnstore::radix::cluster_by_value`) instead and
    /// seed the piece with up to 256 equal-width *advisory* boundaries
    /// at once — the same advisory machinery stochastic cracking uses,
    /// so storage management and exactness bookkeeping need no new
    /// cases. Later cracks then run on roughly
    /// [`PREPARTITION_TARGET_PIECE`]-sized pieces.
    ///
    /// Only fires under the block kernel ([`CrackKernel::Block`]): the
    /// fast path is part of the block kernel's behaviour, and keeping
    /// the scalar kernel bit-for-bit the paper's access pattern
    /// preserves its figures. Deterministic given the array state, so
    /// tape replay on aligned siblings (which share one process-wide
    /// kernel) reproduces it exactly.
    fn maybe_prepartition(&mut self, key: BoundaryKey, target_piece: usize) {
        if active_kernel() != CrackKernel::Block {
            return;
        }
        let (s, e) = self.index.enclosing_piece(key, self.head.len());
        if e - s >= PREPARTITION_MIN_PIECE {
            self.prepartition(key, target_piece);
        }
    }

    /// Unconditionally counting-partition the piece enclosing `key` into
    /// roughly `target_piece`-sized advisory pieces (capped at 256
    /// buckets and at the piece's distinct-value range). Public for
    /// benches and tests; queries reach it automatically through the
    /// [`PREPARTITION_MIN_PIECE`] size threshold. No-op when the piece
    /// holds fewer than two values or `key` already has a boundary.
    pub fn prepartition(&mut self, key: BoundaryKey, target_piece: usize) {
        if self.index.position_of(key).is_some() {
            return;
        }
        let (s, e) = self.index.enclosing_piece(key, self.head.len());
        let mut min = Val::MAX;
        let mut max = Val::MIN;
        for &v in &self.head[s..e] {
            min = min.min(v);
            max = max.max(v);
        }
        if min >= max {
            return; // empty or single-value piece: nothing to cut
        }
        let range = max as i128 - min as i128 + 1;
        let buckets = (((e - s) / target_piece.max(1)).min(256) as i128).min(range) as usize;
        if buckets < 2 {
            return;
        }
        let offsets = cluster_by_value(
            &mut self.head[s..e],
            &mut self.tail[s..e],
            buckets,
            min,
            max,
        );
        // One logical pass over the piece, like a crack of it (the
        // counter is the paper's touched-tuples metric, not a physical
        // sweep count — kernels of either flavour account the same).
        self.touched += (e - s) as u64;
        for (b, &off) in offsets.iter().enumerate().take(buckets).skip(1) {
            let cut = (value_bucket_bound(b, buckets, min, max), BoundKind::Lt);
            self.index.record_advisory(cut, s + off);
        }
        if self.index.position_of(key).is_some() {
            // The queried boundary coincides with a cut: it is
            // query-mandated, not advisory.
            self.index.promote(key);
        }
    }

    /// Ensure a boundary exists under the stochastic policy: while the
    /// enclosing piece is large, crack it at an *advisory* pivot — the
    /// head value at a pseudo-random position derived purely from the
    /// piece coordinates and `seed` (so tape replay on aligned siblings
    /// reproduces it) — then descend into the half containing `key`.
    /// Pieces along the access path halve until small enough for the
    /// exact crack, defeating the sequential-sweep pathology.
    fn ensure_boundary_stochastic(&mut self, key: BoundaryKey, seed: u64) -> usize {
        // A huge virgin piece is better seeded by one counting pass than
        // by O(log n) successive halvings that each re-plough it.
        self.maybe_prepartition(key, PREPARTITION_TARGET_PIECE);
        loop {
            if let Some(p) = self.index.position_of(key) {
                self.index.promote(key);
                return p;
            }
            let (s, e) = self.index.enclosing_piece(key, self.head.len());
            if e - s <= DEFAULT_STOCHASTIC_MIN_PIECE {
                let split = crack_in_two(&mut self.head, &mut self.tail, s, e, key.0, key.1);
                self.touched += (e - s) as u64;
                self.index.record(key, split);
                return split;
            }
            let h = mix64(seed ^ (s as u64).rotate_left(17) ^ ((e as u64) << 1));
            let pos = s + (h as usize) % (e - s);
            let adv: BoundaryKey = (self.head[pos], BoundKind::Le);
            let split = crack_in_two(&mut self.head, &mut self.tail, s, e, adv.0, adv.1);
            self.touched += (e - s) as u64;
            if adv == key {
                self.index.record(key, split);
                return split;
            }
            if split == s || split == e {
                // Degenerate pivot (one value dominates the piece):
                // record nothing, crack exactly to guarantee progress.
                let split = crack_in_two(&mut self.head, &mut self.tail, s, e, key.0, key.1);
                self.touched += (e - s) as u64;
                self.index.record(key, split);
                return split;
            }
            self.index.record_advisory(adv, split);
        }
    }

    /// Crack at `key` if the policy permits it: `Some(position)` when the
    /// boundary exists afterwards (pre-existing or newly cracked, with
    /// any advisory pivots the policy injects), `None` when
    /// [`CrackPolicy::CoarseGranular`] declined because the enclosing
    /// piece is already at or below its leaf size.
    pub fn crack_boundary(&mut self, key: BoundaryKey, policy: &CrackPolicy) -> Option<usize> {
        if let Some(p) = self.index.position_of(key) {
            // A query landed exactly on this boundary: if it was an
            // advisory pivot it is query-mandated from now on.
            self.index.promote(key);
            return Some(p);
        }
        match *policy {
            // Adaptive is resolved to a static policy by the owning
            // structure's advisor before cracking; a kernel that sees it
            // anyway falls back to the paper's exact behaviour.
            CrackPolicy::Standard | CrackPolicy::Adaptive => Some(self.ensure_boundary(key)),
            CrackPolicy::Stochastic { seed } => Some(self.ensure_boundary_stochastic(key, seed)),
            CrackPolicy::CoarseGranular { min_piece } => {
                let (s, e) = self.index.enclosing_piece(key, self.head.len());
                if e - s <= min_piece {
                    return None;
                }
                // Policy-aware target: never seed pieces below the
                // coarse leaf size (see `CrackPolicy::prepartition_target`).
                self.maybe_prepartition(key, policy.prepartition_target());
                if let Some(p) = self.index.position_of(key) {
                    return Some(p);
                }
                let (s, e) = self.index.enclosing_piece(key, self.head.len());
                if e - s <= min_piece {
                    None
                } else {
                    Some(self.ensure_boundary(key))
                }
            }
        }
    }

    /// Assert the boundary-inversion invariant: the hi boundary of a
    /// non-empty predicate can never sit left of its lo boundary,
    /// because boundary keys are totally ordered and every recorded
    /// boundary physically partitions the same array. (This used to be a
    /// silent `b.max(a)` clamp; debug builds now fail loudly, and the
    /// clamp only remains as release-mode slicing protection.)
    fn checked_range(a: usize, b: usize) -> (usize, usize) {
        debug_assert!(
            b >= a,
            "boundary inversion: hi boundary at {b} left of lo boundary at {a}"
        );
        (a, b.max(a))
    }

    /// Crack so that all tuples qualifying `pred` form the contiguous area
    /// `[start, end)`; returns that range. Uses crack-in-three when both
    /// new boundaries fall into the same piece. Equivalent to
    /// [`Self::crack_range_with`] under [`CrackPolicy::Standard`].
    pub fn crack_range(&mut self, pred: &RangePred) -> (usize, usize) {
        let n = self.head.len();
        if pred.is_empty_range() {
            return (0, 0);
        }
        let (lo_k, hi_k) = pred_keys(pred);
        match (lo_k, hi_k) {
            (None, None) => (0, n),
            (Some(lk), None) => (self.ensure_boundary(lk), n),
            (None, Some(hk)) => (0, self.ensure_boundary(hk)),
            (Some(lk), Some(hk)) => {
                debug_assert!(lk < hk, "non-empty pred must order its keys");
                // Seed huge virgin pieces before deciding between the
                // crack-in-three and two-crack paths: the piece layout
                // (and thus the choice) may change under prepartition.
                self.maybe_prepartition(lk, PREPARTITION_TARGET_PIECE);
                self.maybe_prepartition(hk, PREPARTITION_TARGET_PIECE);
                let lo_pos = self.index.position_of(lk);
                let hi_pos = self.index.position_of(hk);
                match (lo_pos, hi_pos) {
                    (Some(a), Some(b)) => Self::checked_range(a, b),
                    (Some(a), None) => {
                        let b = self.ensure_boundary(hk);
                        Self::checked_range(a, b)
                    }
                    (None, Some(b)) => {
                        let a = self.ensure_boundary(lk);
                        Self::checked_range(a, b)
                    }
                    (None, None) => {
                        let (s1, e1) = self.index.enclosing_piece(lk, n);
                        let (s2, e2) = self.index.enclosing_piece(hk, n);
                        if (s1, e1) == (s2, e2) {
                            let (a, b) =
                                crack_in_three(&mut self.head, &mut self.tail, s1, e1, lk, hk);
                            self.touched += (e1 - s1) as u64;
                            self.index.record(lk, a);
                            self.index.record(hk, b);
                            (a, b)
                        } else {
                            let a = self.ensure_boundary(lk);
                            let b = self.ensure_boundary(hk);
                            Self::checked_range(a, b)
                        }
                    }
                }
            }
        }
    }

    /// Policy-aware [`Self::crack_range`]: crack (or decline to crack)
    /// at the predicate's bounds according to `policy` and return the
    /// qualifying [`Span`]. Under [`CrackPolicy::Standard`] this is
    /// byte-identical to `crack_range` (same kernels, same boundaries);
    /// under [`CrackPolicy::CoarseGranular`] the span may be inexact —
    /// a superset delimited by leaf pieces — and the caller must filter
    /// head values with `pred`.
    pub fn crack_range_with(&mut self, pred: &RangePred, policy: &CrackPolicy) -> Span {
        if matches!(policy, CrackPolicy::Standard | CrackPolicy::Adaptive) {
            let (s, e) = self.crack_range(pred);
            return Span::exact(s, e);
        }
        let n = self.head.len();
        if pred.is_empty_range() {
            return Span::exact(0, 0);
        }
        let (lo_k, hi_k) = pred_keys(pred);
        let (start, lo_exact) = match lo_k {
            None => (0, true),
            Some(k) => match self.crack_boundary(k, policy) {
                Some(p) => (p, true),
                // Coarse decline: open the span at the leaf piece start.
                None => (self.index.enclosing_piece(k, n).0, false),
            },
        };
        let (end, hi_exact) = match hi_k {
            None => (n, true),
            Some(k) => match self.crack_boundary(k, policy) {
                Some(p) => (p, true),
                None => (self.index.enclosing_piece(k, n).1, false),
            },
        };
        let exact = lo_exact && hi_exact;
        if exact {
            let (start, end) = Self::checked_range(start, end);
            Span { start, end, exact }
        } else {
            Span {
                start,
                end: end.max(start),
                exact,
            }
        }
    }

    /// Read-only view of a contiguous area.
    pub fn view(&self, range: (usize, usize)) -> (&[Val], &[T]) {
        (&self.head[range.0..range.1], &self.tail[range.0..range.1])
    }

    /// The piece `[start, end)` that value `v` currently belongs to.
    pub fn piece_of(&self, v: Val) -> (usize, usize) {
        let mut s = 0;
        let mut e = self.head.len();
        for ((bv, kind), pos) in self.index.boundaries() {
            if kind.belongs_left(v, bv) {
                e = pos;
                break;
            }
            s = pos;
        }
        (s, e.max(s))
    }

    /// Ripple-insert one tuple (Idreos et al., SIGMOD 2007): grow the
    /// array by one and shift each piece boundary above the target piece
    /// by moving a single element per piece, preserving all cracker-index
    /// knowledge.
    pub fn ripple_insert(&mut self, v: Val, t: T) {
        let bs = self.index.boundaries();
        self.head.push(v);
        self.tail.push(t);
        let mut free = self.head.len() - 1;
        for &((bv, kind), pos) in bs.iter().rev() {
            if kind.belongs_left(v, bv) {
                // The piece right of this boundary loses its first slot to
                // the free position and regains one at its new start.
                self.head[free] = self.head[pos];
                self.tail[free] = self.tail[pos];
                free = pos;
                self.index.reposition((bv, kind), pos + 1);
            } else {
                break;
            }
        }
        self.head[free] = v;
        self.tail[free] = t;
    }

    /// Ripple-delete the first tuple with head value `v` whose tail
    /// satisfies `matches`. Returns the physical position the deletion was
    /// performed at, or `None` if no such tuple exists. The position is
    /// what other aligned structures must replay (see the tape's delete
    /// batches).
    pub fn ripple_delete<F: Fn(&T) -> bool>(&mut self, v: Val, matches: F) -> Option<usize> {
        let n = self.head.len();
        let bs = self.index.boundaries();
        // Locate the containing piece.
        let mut s = 0;
        let mut first_above = bs.len();
        for (i, &((bv, kind), pos)) in bs.iter().enumerate() {
            if kind.belongs_left(v, bv) {
                first_above = i;
                break;
            }
            s = pos;
        }
        let e = if first_above < bs.len() {
            bs[first_above].1
        } else {
            n
        };
        // Find the victim within the piece.
        let p = (s..e).find(|&i| self.head[i] == v && matches(&self.tail[i]))?;
        self.shift_hole_up(p, e, first_above, &bs);
        Some(p)
    }

    /// Ripple-delete the tuple at a known physical position (replaying a
    /// deletion another aligned map already performed). Returns the
    /// removed `(head, tail)` pair.
    pub fn ripple_delete_at(&mut self, p: usize) -> (Val, T) {
        let removed = (self.head[p], self.tail[p]);
        let bs = self.index.boundaries();
        // First boundary strictly above p delimits p's piece.
        let first_above = bs.partition_point(|&(_, pos)| pos <= p);
        let e = if first_above < bs.len() {
            bs[first_above].1
        } else {
            self.head.len()
        };
        self.shift_hole_up(p, e, first_above, &bs);
        removed
    }

    /// Shift the hole at `p` (inside the piece ending at `piece_end`,
    /// whose delimiting boundary is `bs[first_above]`) up through all
    /// pieces above and shrink the array by one.
    fn shift_hole_up(
        &mut self,
        p: usize,
        piece_end: usize,
        first_above: usize,
        bs: &[(crate::index::BoundaryKey, usize)],
    ) {
        let n = self.head.len();
        let mut hole = p;
        let mut piece_end = piece_end;
        let mut bi = first_above;
        loop {
            if hole != piece_end - 1 {
                self.head[hole] = self.head[piece_end - 1];
                self.tail[hole] = self.tail[piece_end - 1];
            }
            hole = piece_end - 1;
            // Every boundary sitting exactly at this piece end shifts left
            // by one — including boundaries at the array end (empty last
            // pieces), which must not be left stale.
            while bi < bs.len() && bs[bi].1 == piece_end {
                self.index.reposition(bs[bi].0, piece_end - 1);
                bi += 1;
            }
            if piece_end == n {
                break;
            }
            piece_end = if bi < bs.len() { bs[bi].1 } else { n };
        }
        debug_assert_eq!(hole, n - 1);
        self.head.pop();
        self.tail.pop();
    }

    /// Debug/test helper: assert every piece's contents respect the
    /// boundaries recorded in the index.
    #[doc(hidden)]
    pub fn check_partitioning(&self) {
        for ((bv, kind), pos) in self.index.boundaries() {
            for (i, &h) in self.head.iter().enumerate() {
                if i < pos {
                    assert!(
                        kind.belongs_left(h, bv),
                        "value {h} at {i} violates boundary ({bv:?},{kind:?})@{pos}"
                    );
                } else {
                    assert!(
                        !kind.belongs_left(h, bv),
                        "value {h} at {i} violates boundary ({bv:?},{kind:?})@{pos}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::types::RangePred;

    fn arr() -> CrackedArray<u32> {
        let head = vec![12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16];
        let tail: Vec<u32> = (0..13).collect();
        CrackedArray::new(head, tail)
    }

    #[test]
    fn figure1_first_query() {
        // select B from R where 10 < A < 15.
        let mut a = arr();
        let (s, e) = a.crack_range(&RangePred::open(10, 15));
        let (h, t) = a.view((s, e));
        let mut pairs: Vec<_> = h.iter().zip(t).map(|(&v, &k)| (v, k)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(11, 11), (12, 0)]);
        a.check_partitioning();
        assert_eq!(a.index().len(), 2);
    }

    #[test]
    fn figure1_second_query_cracks_incrementally() {
        let mut a = arr();
        a.crack_range(&RangePred::open(10, 15));
        // select B from R where 5 <= A < 17: middle piece fully qualifies,
        // only outer pieces are cracked further.
        let (s, e) = a.crack_range(&RangePred::half_open(5, 17));
        let (h, _) = a.view((s, e));
        let mut vals: Vec<_> = h.to_vec();
        vals.sort_unstable();
        assert_eq!(vals, vec![5, 7, 9, 11, 12, 15, 16]);
        a.check_partitioning();
        assert_eq!(a.index().len(), 4);
    }

    #[test]
    fn repeat_query_needs_no_crack() {
        let mut a = arr();
        let r1 = a.crack_range(&RangePred::open(10, 15));
        let boundaries_before = a.index().len();
        let r2 = a.crack_range(&RangePred::open(10, 15));
        assert_eq!(r1, r2);
        assert_eq!(a.index().len(), boundaries_before);
    }

    #[test]
    fn one_sided_predicates() {
        let mut a = arr();
        let (s, e) = a.crack_range(&RangePred::less(
            crackdb_columnstore::types::Bound::exclusive(10),
        ));
        assert_eq!(s, 0);
        let (h, _) = a.view((s, e));
        assert!(h.iter().all(|&v| v < 10));
        assert_eq!(h.len(), 6);
        a.check_partitioning();
    }

    #[test]
    fn point_query() {
        let head = vec![5, 3, 5, 1, 5, 9];
        let tail: Vec<u32> = (0..6).collect();
        let mut a = CrackedArray::new(head, tail);
        let (s, e) = a.crack_range(&RangePred::point(5));
        let (h, _) = a.view((s, e));
        assert_eq!(h, &[5, 5, 5]);
        a.check_partitioning();
    }

    #[test]
    fn empty_pred_returns_empty() {
        let mut a = arr();
        let (s, e) = a.crack_range(&RangePred::open(5, 5));
        assert_eq!(s, e);
    }

    #[test]
    fn no_result_range() {
        let mut a = arr();
        let (s, e) = a.crack_range(&RangePred::open(16, 22));
        let (h, _) = a.view((s, e));
        assert!(h.is_empty());
        a.check_partitioning();
    }

    #[test]
    fn ripple_insert_into_each_piece() {
        let mut a = arr();
        a.crack_range(&RangePred::open(10, 15));
        let before = a.len();
        a.ripple_insert(1, 100); // lowest piece
        a.ripple_insert(13, 101); // middle piece
        a.ripple_insert(99, 102); // top piece
        assert_eq!(a.len(), before + 3);
        a.check_partitioning();
        // All three tuples findable via a fresh crack.
        let (s, e) = a.crack_range(&RangePred::open(10, 15));
        let (h, t) = a.view((s, e));
        assert!(h.iter().zip(t).any(|(&v, &k)| v == 13 && k == 101));
    }

    #[test]
    fn ripple_insert_uncracked() {
        let mut a = CrackedArray::new(vec![5, 1], vec![0u32, 1]);
        a.ripple_insert(3, 2);
        assert_eq!(a.len(), 3);
        let (s, e) = a.crack_range(&RangePred::closed(3, 3));
        assert_eq!(e - s, 1);
    }

    #[test]
    fn ripple_delete_from_middle_piece() {
        let mut a = arr();
        a.crack_range(&RangePred::open(10, 15));
        let before = a.len();
        assert!(a.ripple_delete(12, |&k| k == 0).is_some());
        assert_eq!(a.len(), before - 1);
        a.check_partitioning();
        let (s, e) = a.crack_range(&RangePred::open(10, 15));
        let (h, _) = a.view((s, e));
        assert_eq!(h, &[11]);
    }

    #[test]
    fn ripple_delete_missing_returns_false() {
        let mut a = arr();
        a.crack_range(&RangePred::open(10, 15));
        assert!(a.ripple_delete(12, |&k| k == 999).is_none());
        assert!(a.ripple_delete(1000, |_| true).is_none());
        a.check_partitioning();
    }

    #[test]
    fn ripple_roundtrip_many() {
        let mut a = arr();
        a.crack_range(&RangePred::open(5, 20));
        a.crack_range(&RangePred::open(2, 9));
        for i in 0..50 {
            a.ripple_insert(i % 30, 1000 + i as u32);
            a.check_partitioning();
        }
        for i in 0..50 {
            assert!(a
                .ripple_delete((i % 30) as Val, |&k| k == 1000 + i as u32)
                .is_some());
            a.check_partitioning();
        }
        assert_eq!(a.len(), 13);
    }

    /// Satellite regression for the `(Some(a), Some(b))` clamp audit:
    /// interleaved two-sided cracks (nested, overlapping, touching,
    /// repeated, point) must never record inverted boundaries — the
    /// debug assertion in `checked_range` fires if they do, and the
    /// returned ranges must always be well-formed supersets of nothing
    /// (start <= end) with correct partitioning.
    #[test]
    fn interleaved_two_sided_cracks_never_invert() {
        let mut state = 0xDEAD_BEEFu64;
        let mut next = |m: i64| -> i64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as i64).rem_euclid(m)
        };
        let head: Vec<Val> = (0..500).map(|_| next(100)).collect();
        let tail: Vec<u32> = (0..500).collect();
        let mut a = CrackedArray::new(head, tail);
        for i in 0..300 {
            let lo = next(100);
            let hi = lo + next(20);
            let pred = match i % 4 {
                0 => RangePred::open(lo, hi),
                1 => RangePred::closed(lo, hi),
                2 => RangePred::half_open(lo, hi),
                _ => RangePred::point(lo),
            };
            let (s, e) = a.crack_range(&pred);
            assert!(s <= e, "query {i}: inverted range ({s}, {e})");
            // Both recorded boundaries must resolve in order.
            if let (Some(lk), Some(hk)) = crate::index::pred_keys(&pred) {
                if !pred.is_empty_range() {
                    let pl = a.index().position_of(lk).expect("lo recorded");
                    let ph = a.index().position_of(hk).expect("hi recorded");
                    assert!(pl <= ph, "query {i}: boundaries inverted {pl} > {ph}");
                }
            }
            a.check_partitioning();
        }
    }

    #[test]
    fn stochastic_policy_spans_are_exact_and_match_standard_results() {
        let head: Vec<Val> = (0..2000).map(|i| (i * 37) % 1000).collect();
        let tail: Vec<u32> = (0..2000).collect();
        let mut std_arr = CrackedArray::new(head.clone(), tail.clone());
        let mut sto_arr = CrackedArray::new(head, tail);
        let policy = CrackPolicy::stochastic();
        for lo in [0, 150, 420, 900, 10] {
            let pred = RangePred::open(lo, lo + 77);
            let (s1, e1) = std_arr.crack_range(&pred);
            let span = sto_arr.crack_range_with(&pred, &policy);
            assert!(span.exact, "stochastic spans are always exact");
            // Same qualifying multiset either way.
            let mut a: Vec<_> = std_arr.head()[s1..e1].to_vec();
            let mut b: Vec<_> = sto_arr.head()[span.start..span.end].to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            sto_arr.check_partitioning();
        }
        // Advisory pivots only ever appear under non-standard policies.
        assert_eq!(std_arr.index().advisory_count(), 0);
    }

    #[test]
    fn coarse_policy_declines_small_pieces_and_reports_inexact_spans() {
        let head: Vec<Val> = (0..100).rev().collect();
        let tail: Vec<u32> = (0..100).collect();
        let mut arr = CrackedArray::new(head, tail);
        let policy = CrackPolicy::CoarseGranular { min_piece: 1000 };
        let pred = RangePred::open(20, 40);
        let span = arr.crack_range_with(&pred, &policy);
        assert!(!span.exact, "piece of 100 <= min_piece 1000: no split");
        assert_eq!(span.range(), (0, 100), "whole leaf piece returned");
        assert_eq!(arr.index().len(), 0, "no boundary recorded");
        // Filtering the span yields exactly the qualifying tuples.
        let qualify: Vec<_> = arr.head()[span.start..span.end]
            .iter()
            .filter(|&&v| pred.matches(v))
            .copied()
            .collect();
        assert_eq!(qualify.len(), 19);

        // A large piece still cracks exactly.
        let policy = CrackPolicy::CoarseGranular { min_piece: 10 };
        let span = arr.crack_range_with(&pred, &policy);
        assert!(span.exact);
        assert_eq!(span.len(), 19);
        arr.check_partitioning();
    }

    #[test]
    fn touched_counter_accumulates_on_cracks_only() {
        let mut a = arr();
        assert_eq!(a.touched(), 0);
        a.crack_range(&RangePred::open(10, 15));
        let after_first = a.touched();
        assert!(after_first > 0);
        // Repeat query: boundaries exist, nothing touched.
        a.crack_range(&RangePred::open(10, 15));
        assert_eq!(a.touched(), after_first);
    }

    fn lcg_vals(n: usize, m: i64, seed: u64) -> Vec<Val> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as i64).rem_euclid(m)
            })
            .collect()
    }

    #[test]
    fn prepartition_seeds_advisory_cuts_and_keeps_answers() {
        let head = lcg_vals(20_000, 10_000, 42);
        let tail: Vec<u32> = (0..20_000).collect();
        let mut pre = CrackedArray::new(head.clone(), tail.clone());
        let mut plain = CrackedArray::new(head, tail);
        // Force the fast path below its automatic threshold.
        pre.prepartition((5_000, BoundKind::Lt), 1_000);
        assert!(pre.index().advisory_count() > 2, "cuts were seeded");
        pre.check_partitioning();
        // Every later query answers identically to the uncut twin.
        for (lo, hi) in [(100, 900), (4_990, 5_003), (0, 9_999), (7_500, 7_501)] {
            let (s1, e1) = pre.crack_range(&RangePred::open(lo, hi));
            let (s2, e2) = plain.crack_range(&RangePred::open(lo, hi));
            let mut a = pre.head()[s1..e1].to_vec();
            let mut b = plain.head()[s2..e2].to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "answers differ for ({lo}, {hi})");
            pre.check_partitioning();
        }
    }

    #[test]
    fn prepartition_promotes_coincident_query_key() {
        // Domain [0, 1000) split into 10 buckets puts a cut exactly at
        // value 100 — the same key a query for `< 100` mandates.
        let head = lcg_vals(50_000, 1_000, 7);
        let tail: Vec<u32> = (0..50_000).collect();
        let mut a = CrackedArray::new(head, tail);
        let key = (100, BoundKind::Lt);
        a.prepartition(key, 5_000);
        assert!(a.index().position_of(key).is_some(), "cut at the key");
        assert!(!a.index().is_advisory(key), "query key was promoted");
        a.check_partitioning();
    }

    #[test]
    fn prepartition_degenerates_are_noops() {
        // Single-value piece: nothing to cut.
        let mut a = CrackedArray::new(vec![7; 4096], (0..4096u32).collect());
        a.prepartition((3, BoundKind::Lt), 16);
        assert_eq!(a.index().len(), 0);
        // Tiny value range caps the bucket count at the range.
        let head: Vec<Val> = (0..4096).map(|i| i % 2).collect();
        let mut a = CrackedArray::new(head, (0..4096u32).collect());
        a.prepartition((1, BoundKind::Lt), 16);
        assert!(a.index().len() <= 1, "at most one cut for two values");
        a.check_partitioning();
        // Existing boundary at the key: no-op.
        let mut a = arr();
        a.crack_range(&RangePred::open(10, 15));
        let n_before = a.index().len();
        a.prepartition((15, BoundKind::Lt), 1);
        assert_eq!(a.index().len(), n_before);
    }

    #[test]
    fn automatic_prepartition_fires_above_threshold_under_block_kernel() {
        if crate::kernel::active_kernel() != crate::kernel::CrackKernel::Block {
            return; // scalar kernel preserves the paper's access pattern
        }
        let n = super::PREPARTITION_MIN_PIECE + 10;
        let head = lcg_vals(n, 1 << 30, 11);
        let tail: Vec<u32> = (0..n as u32).collect();
        let mut a = CrackedArray::new(head, tail);
        let pred = RangePred::open(1 << 20, (1 << 20) + (1 << 14));
        let (s, e) = a.crack_range(&pred);
        // A piece just over the 2^20 threshold with a 2^16 target piece
        // yields 16 buckets, i.e. 15 advisory cuts (minus coincidences).
        assert!(
            a.index().advisory_count() >= 10,
            "first crack of a {n}-tuple piece seeds many cuts, got {}",
            a.index().advisory_count()
        );
        assert!(a.head()[s..e].iter().all(|&v| pred.matches(v)));
        // Pieces are now small: the next query in a far region cracks
        // only its enclosing bucket, not the whole array.
        let before = a.touched();
        a.crack_range(&RangePred::open(1 << 29, (1 << 29) + (1 << 14)));
        let delta = a.touched() - before;
        // Two bounds can each crack one ~n/16 bucket: well under n/4.
        assert!(
            delta < (n as u64) / 4,
            "post-seed crack ploughed {delta} of {n} tuples"
        );
    }

    #[test]
    fn piece_of_locates_values() {
        let mut a = arr();
        a.crack_range(&RangePred::open(10, 15));
        let (s, e) = a.piece_of(12);
        assert!(a.head()[s..e].iter().all(|&v| v > 10 && v < 15));
        let (s2, e2) = a.piece_of(3);
        assert!(a.head()[s2..e2].iter().all(|&v| v <= 10));
        assert_eq!(s2, 0);
    }
}
