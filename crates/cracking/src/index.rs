//! The cracker index: an AVL tree over *boundary keys* recording how crack
//! values partition a physical array, plus the piece arithmetic and the
//! self-organizing-histogram estimates of §3.3.

use crate::avl::AvlTree;
use crate::crack::BoundKind;
use crackdb_columnstore::types::{Bound, RangePred, Val};
use std::collections::HashSet;

/// A boundary key: the crack value plus which side of it belongs to the
/// left piece. `(v, Lt)` sorts before `(v, Le)` so that the pieces
/// `< v`, `== v`, `> v` nest correctly.
pub type BoundaryKey = (Val, BoundKind);

/// Derive the boundary key whose *position* is the start of the qualifying
/// area for a lower bound.
pub fn lo_key(b: Bound) -> BoundaryKey {
    if b.inclusive {
        // A >= v: left piece < v.
        (b.value, BoundKind::Lt)
    } else {
        // A > v: left piece <= v.
        (b.value, BoundKind::Le)
    }
}

/// Derive the boundary key whose *position* is the end of the qualifying
/// area for an upper bound.
pub fn hi_key(b: Bound) -> BoundaryKey {
    if b.inclusive {
        // A <= v: left piece <= v.
        (b.value, BoundKind::Le)
    } else {
        // A < v: left piece < v.
        (b.value, BoundKind::Lt)
    }
}

/// Convert a range predicate into its (lower, upper) boundary keys.
pub fn pred_keys(pred: &RangePred) -> (Option<BoundaryKey>, Option<BoundaryKey>) {
    (pred.lo.map(lo_key), pred.hi.map(hi_key))
}

/// Result-size estimate from the cracker index (§3.3 "Self-organizing
/// Histograms").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeEstimate {
    /// Lower bound on qualifying tuples (whole pieces known inside).
    pub lower: usize,
    /// Upper bound (all touched pieces).
    pub upper: usize,
    /// Interpolated point estimate within `[lower, upper]`.
    pub estimate: f64,
    /// `true` when the bounds matched existing cracks exactly.
    pub exact: bool,
}

/// The cracker index proper: AVL over boundary keys with positions into the
/// cracked array.
#[derive(Debug, Clone, Default)]
pub struct CrackerIndex {
    tree: AvlTree<BoundaryKey>,
    /// Boundaries injected by a [`crate::policy::CrackPolicy`] rather
    /// than mandated by a query predicate. Physically they partition the
    /// array exactly like query boundaries; the distinction exists for
    /// instrumentation and for the policy property tests ("every
    /// query-mandated boundary is exact").
    advisory: HashSet<BoundaryKey>,
}

impl CrackerIndex {
    /// Empty index (one piece spanning the whole array).
    pub fn new() -> Self {
        CrackerIndex {
            tree: AvlTree::new(),
            advisory: HashSet::new(),
        }
    }

    /// Number of live boundaries; the array has `len() + 1` pieces.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when the array is one uncracked piece.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Total nodes including lazily deleted ones (storage-reuse tests).
    pub fn total_nodes(&self) -> usize {
        self.tree.total_nodes()
    }

    /// Position of a live boundary, if this exact boundary was cracked.
    pub fn position_of(&self, key: BoundaryKey) -> Option<usize> {
        self.tree.get(&key)
    }

    /// Position of a boundary even if lazily deleted: `(pos, deleted)`.
    pub fn position_any(&self, key: BoundaryKey) -> Option<(usize, bool)> {
        self.tree.get_any(&key)
    }

    /// Record a query-mandated crack: boundary `key` lives at `pos`. An
    /// advisory boundary at the same key is promoted to query-mandated.
    pub fn record(&mut self, key: BoundaryKey, pos: usize) {
        self.tree.insert(key, pos);
        self.advisory.remove(&key);
    }

    /// Record a policy-injected *advisory* crack: boundary `key` lives
    /// at `pos`, but no query predicate demanded it. A key that is
    /// already query-mandated stays query-mandated.
    pub fn record_advisory(&mut self, key: BoundaryKey, pos: usize) {
        let already_query = self.tree.get(&key).is_some() && !self.advisory.contains(&key);
        self.tree.insert(key, pos);
        if !already_query {
            self.advisory.insert(key);
        }
    }

    /// Update the position of an existing boundary without changing its
    /// query-mandated/advisory status (ripple inserts and deletes shift
    /// positions, they never create new partitioning knowledge).
    pub fn reposition(&mut self, key: BoundaryKey, pos: usize) {
        self.tree.insert(key, pos);
    }

    /// Promote a boundary to query-mandated: a query predicate landed
    /// exactly on a previously advisory pivot.
    pub fn promote(&mut self, key: BoundaryKey) {
        self.advisory.remove(&key);
    }

    /// Was this boundary injected by a policy (and never demanded by a
    /// query predicate)?
    pub fn is_advisory(&self, key: BoundaryKey) -> bool {
        self.advisory.contains(&key)
    }

    /// Number of live advisory boundaries.
    pub fn advisory_count(&self) -> usize {
        self.advisory
            .iter()
            .filter(|k| self.tree.get(k).is_some())
            .count()
    }

    /// The enclosing uncracked piece `[start, end)` a new boundary falls
    /// into, given total array length `n`.
    pub fn enclosing_piece(&self, key: BoundaryKey, n: usize) -> (usize, usize) {
        let start = self.tree.floor_strict(&key).map_or(0, |(_, p)| p);
        let end = self.tree.ceil_strict(&key).map_or(n, |(_, p)| p);
        (start, end.max(start))
    }

    /// Mark one boundary lazily deleted.
    pub fn mark_deleted(&mut self, key: BoundaryKey) -> bool {
        self.tree.mark_deleted(&key)
    }

    /// Mark everything lazily deleted (chunk dropped).
    pub fn mark_all_deleted(&mut self) {
        self.tree.mark_all_deleted()
    }

    /// Shift all stored positions `>= from` by `delta` (ripple updates).
    pub fn shift_positions(&mut self, from: usize, delta: isize) {
        self.tree.shift_positions(from, delta)
    }

    /// Live boundaries in key order: `(key, pos)` pairs. Positions are
    /// guaranteed ascending.
    pub fn boundaries(&self) -> Vec<(BoundaryKey, usize)> {
        self.tree.iter_live()
    }

    /// Drop all knowledge.
    pub fn clear(&mut self) {
        self.tree.clear();
        self.advisory.clear();
    }

    /// §3.3: estimate the number of tuples qualifying `pred` in a cracked
    /// array of length `n` whose value domain is `[domain_lo, domain_hi]`.
    ///
    /// If both predicate bounds match existing cracks the answer is exact
    /// (piece sizes are known). Otherwise the touched boundary pieces
    /// contribute uncertainty: `upper` counts them fully, `lower` excludes
    /// them, and `estimate` interpolates assuming uniform values within
    /// each piece.
    pub fn estimate_size(&self, pred: &RangePred, n: usize, domain: (Val, Val)) -> SizeEstimate {
        let (lo_k, hi_k) = pred_keys(pred);

        // Resolve each bound to (known_pos or piece with interpolation).
        let resolve = |key: Option<BoundaryKey>, default: usize| -> (usize, usize, f64, bool) {
            match key {
                None => (default, default, default as f64, true),
                Some(k) => {
                    if let Some(p) = self.tree.get(&k) {
                        (p, p, p as f64, true)
                    } else {
                        let (s, e) = self.enclosing_piece(k, n);
                        // Interpolate position of the boundary value inside
                        // the piece assuming uniform distribution between
                        // the piece's value bounds.
                        let v_lo = self.tree.floor_strict(&k).map_or(domain.0, |(bk, _)| bk.0);
                        let v_hi = self.tree.ceil_strict(&k).map_or(domain.1, |(bk, _)| bk.0);
                        let frac = if v_hi > v_lo {
                            ((k.0 - v_lo) as f64 / (v_hi - v_lo) as f64).clamp(0.0, 1.0)
                        } else {
                            0.5
                        };
                        let est = s as f64 + frac * (e - s) as f64;
                        (s, e, est, false)
                    }
                }
            }
        };

        let (lo_min, lo_max, lo_est, lo_exact) = resolve(lo_k, 0);
        let (hi_min, hi_max, hi_est, hi_exact) = resolve(hi_k, n);

        let upper = hi_max.saturating_sub(lo_min);
        let lower = hi_min.saturating_sub(lo_max);
        let estimate = (hi_est - lo_est).max(0.0);
        SizeEstimate {
            lower,
            upper,
            estimate,
            exact: lo_exact && hi_exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_derivation() {
        assert_eq!(lo_key(Bound::inclusive(5)), (5, BoundKind::Lt));
        assert_eq!(lo_key(Bound::exclusive(5)), (5, BoundKind::Le));
        assert_eq!(hi_key(Bound::inclusive(5)), (5, BoundKind::Le));
        assert_eq!(hi_key(Bound::exclusive(5)), (5, BoundKind::Lt));
    }

    #[test]
    fn key_ordering_nests_pieces() {
        // (v, Lt) must sort before (v, Le): pieces <v | ==v | >v.
        assert!((5, BoundKind::Lt) < (5, BoundKind::Le));
        assert!((5, BoundKind::Le) < (6, BoundKind::Lt));
    }

    #[test]
    fn enclosing_piece_lookup() {
        let mut idx = CrackerIndex::new();
        assert_eq!(idx.enclosing_piece((5, BoundKind::Lt), 100), (0, 100));
        idx.record((10, BoundKind::Lt), 40);
        idx.record((20, BoundKind::Lt), 70);
        assert_eq!(idx.enclosing_piece((5, BoundKind::Lt), 100), (0, 40));
        assert_eq!(idx.enclosing_piece((15, BoundKind::Lt), 100), (40, 70));
        assert_eq!(idx.enclosing_piece((25, BoundKind::Lt), 100), (70, 100));
        // Same value, other kind still nests: (10,Le) sits between
        // (10,Lt)@40 and (20,Lt)@70.
        assert_eq!(idx.enclosing_piece((10, BoundKind::Le), 100), (40, 70));
    }

    #[test]
    fn estimate_exact_when_cracked() {
        let mut idx = CrackerIndex::new();
        idx.record((10, BoundKind::Le), 30);
        idx.record((20, BoundKind::Lt), 80);
        // 10 < A < 20 exactly matches boundaries.
        let e = idx.estimate_size(&RangePred::open(10, 20), 100, (0, 100));
        assert!(e.exact);
        assert_eq!(e.lower, 50);
        assert_eq!(e.upper, 50);
        assert!((e.estimate - 50.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_bounds_when_not_cracked() {
        let mut idx = CrackerIndex::new();
        idx.record((10, BoundKind::Le), 30);
        idx.record((30, BoundKind::Lt), 90);
        // 15 < A < 25: both bounds inside the piece [30, 90).
        let e = idx.estimate_size(&RangePred::open(15, 25), 100, (0, 100));
        assert!(!e.exact);
        assert_eq!(e.upper, 60);
        assert_eq!(e.lower, 0);
        assert!(e.estimate > 0.0 && e.estimate < 60.0);
    }

    #[test]
    fn estimate_uncracked_index() {
        let idx = CrackerIndex::new();
        let e = idx.estimate_size(&RangePred::open(25, 75), 1000, (0, 100));
        assert_eq!(e.upper, 1000);
        assert_eq!(e.lower, 0);
        // Uniform interpolation: about half the tuples.
        assert!((e.estimate - 500.0).abs() < 50.0);
    }

    #[test]
    fn estimate_is_finite_on_degenerate_inputs() {
        // Empty array: every estimate is 0 and finite.
        let idx = CrackerIndex::new();
        let e = idx.estimate_size(&RangePred::open(1, 9), 0, (0, 10));
        assert_eq!((e.lower, e.upper), (0, 0));
        assert!(e.estimate.is_finite() && e.estimate == 0.0);

        // Single-value domain: the interpolation denominator collapses;
        // the estimate must stay finite (never NaN — a NaN would poison
        // the executor's predicate ordering).
        let e = idx.estimate_size(&RangePred::open(5, 5), 100, (5, 5));
        assert!(e.estimate.is_finite());
        let e = idx.estimate_size(&RangePred::closed(5, 5), 100, (5, 5));
        assert!(e.estimate.is_finite());
        assert!(e.estimate >= 0.0 && e.estimate <= 100.0);

        // Cracked index over identical values, degenerate domain.
        let mut idx = CrackerIndex::new();
        idx.record((5, BoundKind::Lt), 0);
        idx.record((5, BoundKind::Le), 100);
        let e = idx.estimate_size(&RangePred::closed(5, 5), 100, (5, 5));
        assert!(e.exact);
        assert_eq!(e.upper, 100);
        assert!(e.estimate.is_finite());
    }

    #[test]
    fn advisory_marking_and_promotion() {
        let mut idx = CrackerIndex::new();
        idx.record_advisory((10, BoundKind::Le), 40);
        idx.record((20, BoundKind::Lt), 70);
        assert!(idx.is_advisory((10, BoundKind::Le)));
        assert!(!idx.is_advisory((20, BoundKind::Lt)));
        assert_eq!(idx.advisory_count(), 1);
        // Repositioning (ripple updates) preserves the flag.
        idx.reposition((10, BoundKind::Le), 41);
        assert!(idx.is_advisory((10, BoundKind::Le)));
        // A query landing exactly on the pivot promotes it.
        idx.promote((10, BoundKind::Le));
        assert!(!idx.is_advisory((10, BoundKind::Le)));
        assert_eq!(idx.advisory_count(), 0);
        // Re-recording an already query-mandated boundary as advisory
        // must not demote it.
        idx.record_advisory((20, BoundKind::Lt), 70);
        assert!(!idx.is_advisory((20, BoundKind::Lt)));
    }

    #[test]
    fn lazy_deletion_reopens_pieces() {
        let mut idx = CrackerIndex::new();
        idx.record((10, BoundKind::Lt), 40);
        idx.record((20, BoundKind::Lt), 70);
        idx.mark_deleted((10, BoundKind::Lt));
        assert_eq!(idx.position_of((10, BoundKind::Lt)), None);
        assert_eq!(idx.position_any((10, BoundKind::Lt)), Some((40, true)));
        assert_eq!(idx.enclosing_piece((15, BoundKind::Lt), 100), (0, 70));
        // Revive.
        idx.record((10, BoundKind::Lt), 40);
        assert_eq!(idx.enclosing_piece((15, BoundKind::Lt), 100), (40, 70));
    }

    #[test]
    fn boundaries_positions_ascending() {
        let mut idx = CrackerIndex::new();
        idx.record((30, BoundKind::Lt), 60);
        idx.record((10, BoundKind::Lt), 20);
        idx.record((20, BoundKind::Le), 45);
        let b = idx.boundaries();
        assert_eq!(b.len(), 3);
        assert!(b.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
    }
}
