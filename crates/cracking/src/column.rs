//! Selection cracking (Idreos et al., CIDR 2007): the cracker column and
//! its `crackers.select` operator, with ripple updates (SIGMOD 2007).
//!
//! This is the baseline the SIGMOD'09 paper improves upon: selections get
//! continuously faster, but because the cracker column is physically
//! reorganized, selection results are no longer aligned with base columns
//! and tuple reconstruction degenerates to random access.

use crate::advisor::PolicyAdvisor;
use crate::cracked::CrackedArray;
use crate::policy::{CrackPolicy, Span};
use crackdb_columnstore::column::Column;
use crackdb_columnstore::types::{RangePred, RowId, Val};

/// A cracker column `C_A`: a copy of base column `A` as `(value, key)`
/// pairs, physically reorganized by every selection, plus pending update
/// queues merged on demand by the Ripple algorithm.
#[derive(Debug, Clone)]
pub struct CrackerColumn {
    arr: CrackedArray<RowId>,
    pending_inserts: Vec<(Val, RowId)>,
    pending_deletes: Vec<(Val, RowId)>,
    /// Policy selection: holds the configured [`CrackPolicy`] and, when
    /// that is [`CrackPolicy::Adaptive`], the workload statistics that
    /// re-decide the effective static policy once per query.
    advisor: PolicyAdvisor,
    /// Cumulative count of crack operations (for instrumentation).
    pub cracks: u64,
}

impl CrackerColumn {
    /// Create the cracker column by copying a base column (the paper's
    /// "first time an attribute is required" step), cracking with the
    /// standard exact-bounds policy.
    pub fn from_column(col: &Column) -> Self {
        Self::with_policy(col, CrackPolicy::Standard)
    }

    /// Create the cracker column with an explicit [`CrackPolicy`].
    pub fn with_policy(col: &Column, policy: CrackPolicy) -> Self {
        let head = col.values().to_vec();
        let tail: Vec<RowId> = (0..col.len() as RowId).collect();
        CrackerColumn {
            arr: CrackedArray::new(head, tail),
            pending_inserts: Vec::new(),
            pending_deletes: Vec::new(),
            advisor: PolicyAdvisor::new(policy),
            cracks: 0,
        }
    }

    /// The column's configured pivot-choice policy (possibly
    /// [`CrackPolicy::Adaptive`]).
    pub fn policy(&self) -> CrackPolicy {
        self.advisor.configured()
    }

    /// The static policy the next crack will run under (equals
    /// [`Self::policy`] unless configured adaptive).
    pub fn effective_policy(&self) -> CrackPolicy {
        self.advisor.effective()
    }

    /// How many times the advisor has switched the effective policy
    /// (always 0 for a static configuration).
    pub fn policy_switches(&self) -> u64 {
        self.advisor.switches()
    }

    /// Cumulative tuples touched by the crack kernels (robustness
    /// instrumentation; see [`CrackedArray::touched`]).
    pub fn touched(&self) -> u64 {
        self.arr.touched()
    }

    /// Number of merged tuples (excludes pending).
    pub fn len(&self) -> usize {
        self.arr.len()
    }

    /// `true` when the column holds no merged tuples.
    pub fn is_empty(&self) -> bool {
        self.arr.is_empty()
    }

    /// The underlying cracked array (read-only).
    pub fn array(&self) -> &CrackedArray<RowId> {
        &self.arr
    }

    /// `crackers.select(A, v1, v2)`: merge relevant pending updates, crack
    /// so qualifying tuples are contiguous, and return the qualifying
    /// `(value, key)` slices. The key order is **not** the insertion
    /// order — the cause of expensive tuple reconstruction.
    ///
    /// Under [`CrackPolicy::CoarseGranular`] the returned slices may be
    /// a *superset* of the qualifying tuples (a declined split leaves
    /// the whole leaf piece); use [`Self::select_keys`] for a filtered
    /// result, or consult [`Self::crack_select_span`] for exactness.
    pub fn crack_select(&mut self, pred: &RangePred) -> (&[Val], &[RowId]) {
        let span = self.crack_select_span(pred);
        self.arr.view(span.range())
    }

    /// Like [`Self::crack_select`] but returns the [`Span`] so callers
    /// can see whether the area is exact or needs filtering.
    pub fn crack_select_span(&mut self, pred: &RangePred) -> Span {
        self.merge_pending(pred);
        let policy = self
            .advisor
            .observe(pred, self.arr.index().len(), self.arr.len());
        let before = self.arr.index().len();
        let span = self.arr.crack_range_with(pred, &policy);
        self.cracks += (self.arr.index().len() - before) as u64;
        span
    }

    /// Qualifying keys only (the common result shape). Correct under
    /// every policy: an inexact coarse-granular span is filtered against
    /// the head values before keys are returned.
    pub fn select_keys(&mut self, pred: &RangePred) -> Vec<RowId> {
        let span = self.crack_select_span(pred);
        let (h, t) = self.arr.view(span.range());
        if span.exact {
            t.to_vec()
        } else {
            h.iter()
                .zip(t)
                .filter(|(&v, _)| pred.matches(v))
                .map(|(_, &k)| k)
                .collect()
        }
    }

    /// Queue an insertion (applied on demand by the Ripple algorithm).
    pub fn queue_insert(&mut self, v: Val, key: RowId) {
        self.pending_inserts.push((v, key));
    }

    /// Queue a deletion (applied on demand).
    pub fn queue_delete(&mut self, v: Val, key: RowId) {
        self.pending_deletes.push((v, key));
    }

    /// Number of pending (unmerged) updates.
    pub fn pending(&self) -> usize {
        self.pending_inserts.len() + self.pending_deletes.len()
    }

    /// Values of every pending (unmerged) insert and delete — the
    /// snapshot builder hides pieces whose interval covers one, since a
    /// sequenced read overlapping them must observe the merge.
    pub fn pending_values(&self) -> Vec<Val> {
        self.pending_inserts
            .iter()
            .chain(self.pending_deletes.iter())
            .map(|&(v, _)| v)
            .collect()
    }

    /// Cheap change fingerprint: equal fingerprints mean the column's
    /// logical *and* physical state is unchanged, so a previously built
    /// snapshot is still current. Covers array length (ripples), live
    /// boundary count (cracks/prepartition), pending queue lengths
    /// (staged updates) and tuples moved by the kernels.
    pub fn fingerprint(&self) -> (usize, usize, usize, usize, u64) {
        (
            self.arr.len(),
            self.arr.index().len(),
            self.pending_inserts.len(),
            self.pending_deletes.len(),
            self.arr.touched(),
        )
    }

    /// Build (or incrementally rebuild) the converged-piece snapshot of
    /// this column via `builder` (one builder per column).
    pub fn snapshot(
        &self,
        builder: &mut crate::snapshot::SnapshotBuilder<RowId>,
    ) -> std::sync::Arc<crate::snapshot::ColumnSnapshot<RowId>> {
        builder.build(&self.arr, &self.pending_values())
    }

    /// Ripple-merge pending updates that are relevant to `pred`, i.e.,
    /// whose values the current query would observe. Other updates stay
    /// pending — the self-organizing behaviour of SIGMOD'07.
    fn merge_pending(&mut self, pred: &RangePred) {
        if !self.pending_inserts.is_empty() {
            let mut i = 0;
            while i < self.pending_inserts.len() {
                let (v, k) = self.pending_inserts[i];
                if pred.matches(v) {
                    self.arr.ripple_insert(v, k);
                    self.pending_inserts.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        if !self.pending_deletes.is_empty() {
            let mut i = 0;
            while i < self.pending_deletes.len() {
                let (v, k) = self.pending_deletes[i];
                if pred.matches(v) {
                    self.arr.ripple_delete(v, |&t| t == k);
                    self.pending_deletes.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Force-merge every pending update regardless of range (used by
    /// tests and by full-scan operations).
    pub fn merge_all_pending(&mut self) {
        self.merge_pending(&RangePred::all());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crackdb_columnstore::column::Column;

    fn base() -> Column {
        Column::new(vec![12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16])
    }

    #[test]
    fn select_returns_unordered_keys() {
        let mut c = CrackerColumn::from_column(&base());
        let keys = c.select_keys(&RangePred::open(2, 16));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 6, 8, 11]);
    }

    #[test]
    fn select_matches_scan_semantics() {
        let col = base();
        let mut c = CrackerColumn::from_column(&col);
        for pred in [
            RangePred::open(5, 20),
            RangePred::closed(5, 20),
            RangePred::point(7),
            RangePred::open(-5, 100),
        ] {
            let mut got = c.select_keys(&pred);
            got.sort_unstable();
            let expected = crackdb_columnstore::ops::select::select(&col, &pred);
            assert_eq!(got, expected, "pred {pred:?}");
        }
        c.array().check_partitioning();
    }

    #[test]
    fn select_keys_correct_under_all_policies() {
        let col = base();
        for policy in crate::policy::CrackPolicy::all_selectable() {
            let mut c = CrackerColumn::with_policy(&col, policy);
            assert_eq!(c.policy(), policy);
            for pred in [
                RangePred::open(5, 20),
                RangePred::closed(5, 20),
                RangePred::point(7),
                RangePred::open(-5, 100),
                RangePred::open(13, 14),
            ] {
                let mut got = c.select_keys(&pred);
                got.sort_unstable();
                let expected = crackdb_columnstore::ops::select::select(&col, &pred);
                assert_eq!(got, expected, "policy {} pred {pred:?}", policy.label());
            }
            c.array().check_partitioning();
        }
    }

    #[test]
    fn knowledge_accumulates() {
        let mut c = CrackerColumn::from_column(&base());
        c.crack_select(&RangePred::open(10, 15));
        let cracks_after_first = c.cracks;
        assert!(cracks_after_first >= 1);
        c.crack_select(&RangePred::open(10, 15));
        assert_eq!(c.cracks, cracks_after_first, "repeat query cracks nothing");
    }

    #[test]
    fn pending_inserts_merge_on_demand() {
        let mut c = CrackerColumn::from_column(&base());
        c.crack_select(&RangePred::open(10, 15));
        c.queue_insert(13, 100);
        c.queue_insert(999, 101);
        assert_eq!(c.pending(), 2);
        let (h, t) = c.crack_select(&RangePred::open(10, 15));
        assert!(h.iter().zip(t).any(|(&v, &k)| v == 13 && k == 100));
        // The out-of-range insert stays pending.
        assert_eq!(c.pending(), 1);
        c.array().check_partitioning();
    }

    #[test]
    fn pending_deletes_merge_on_demand() {
        let mut c = CrackerColumn::from_column(&base());
        c.crack_select(&RangePred::open(10, 15));
        c.queue_delete(12, 0);
        let (h, _) = c.crack_select(&RangePred::open(10, 15));
        assert_eq!(h, &[11]);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn update_then_query_other_range() {
        let mut c = CrackerColumn::from_column(&base());
        c.queue_insert(6, 50);
        // Query a range not containing 6: insert must remain pending and
        // invisible.
        let keys = c.select_keys(&RangePred::open(10, 15));
        assert!(!keys.contains(&50));
        assert_eq!(c.pending(), 1);
        // Now query a range containing 6.
        let keys = c.select_keys(&RangePred::open(5, 8));
        assert!(keys.contains(&50));
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn merge_all_pending() {
        let mut c = CrackerColumn::from_column(&base());
        c.queue_insert(1, 60);
        c.queue_delete(12, 0);
        c.merge_all_pending();
        assert_eq!(c.pending(), 0);
        assert_eq!(c.len(), base().len()); // one in, one out
    }
}
