//! Self-tuning crack-policy selection: per-structure workload statistics
//! and the pure decision function that maps them to a static
//! [`CrackPolicy`].
//!
//! PR 4 made the pivot strategy pluggable but *static*: one policy per
//! process, chosen up front, forever. The paper's promise is
//! self-organization driven by the workload, so the policy choice itself
//! should be workload-driven. This module supplies the two pieces:
//!
//! * [`WorkloadStats`] — an O(1)-per-query, allocation-free tracker of
//!   the three signals the static policies were designed around:
//!   **sequential runs** (consecutive adjacent-rightward predicates,
//!   where standard cracking re-ploughs an O(n) tail every query),
//!   **hot-range skew** (a windowed counter of queries landing near a
//!   stochastically-approximated median — concentration means exact
//!   cracking converges and stays cheap; *scatter* means mature indexes
//!   keep paying for cracks nobody revisits), and **boundary density**
//!   (a direct cap on cracker-index growth relative to the array).
//! * [`decide`] — a pure function `(stats, boundaries, len) →
//!   CrackPolicy` choosing Standard or CoarseGranular.
//!
//! [`PolicyAdvisor`] packages both behind the owning structure's
//! configured policy: advisors for a static policy are inert (observe is
//! a branch and a return), advisors for [`CrackPolicy::Adaptive`]
//! update stats and re-decide once per logical query.
//!
//! **Determinism.** Advisor state is a deterministic fold over the
//! observed predicate sequence, and [`decide`] is pure. Two advisors fed
//! the same predicates over structures in the same state make identical
//! decisions — so replicas, shards and replayed tapes stay bit-aligned.
//! The tape/replay layer additionally records the *effective* policy of
//! every crack (see the policy module docs), so replay never needs to
//! re-run the advisor at all.

use crate::policy::CrackPolicy;
use crackdb_columnstore::types::{RangePred, Val};

/// Consecutive adjacent-rightward queries before the advisor treats the
/// workload as a sequential sweep.
pub const SEQ_RUN_ON: u32 = 8;

/// Consecutive non-adjacent queries before sequential mode is left
/// again (hysteresis, so a single wrap-around does not flip-flop).
pub const SEQ_RUN_OFF: u32 = 8;

/// Size of the sliding skew window: once `recent` reaches this, both
/// skew counters are halved, giving an exponential-decay window.
const SKEW_WINDOW: u32 = 64;

/// Minimum observations inside the window before the skew signal is
/// trusted.
const SKEW_MIN_RECENT: u32 = 32;

/// Cracker-index size at which a scattered workload counts as *mature*:
/// past this many boundaries, further exact cracks on uniformly spread
/// predicates mostly shave already-small pieces, and coarse-granular
/// leaves save the crack and index-insert work.
pub const MATURE_BOUNDARIES: usize = 128;

/// Frequency-based grace for map/chunk retention scoring: each doubling
/// of a structure's access count keeps it alive this many clock ticks
/// longer than pure recency would.
pub const RETENTION_GRACE: u64 = 8;

/// O(1) per-query workload signals for one cracked structure.
///
/// All state is a handful of scalars; `observe` allocates nothing. The
/// tracker is a deterministic fold over the predicate sequence: feeding
/// two trackers the same predicates leaves them bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Total predicates observed.
    queries: u64,
    /// Predicates observed that carried at least one bound.
    located: u64,
    /// Bounds of the previous located predicate.
    last_lo: Val,
    last_hi: Val,
    /// Length of the current run of adjacent-rightward predicates.
    seq_run: u32,
    /// Lower bound of the predicate that anchored the current run (for
    /// the displacement gate: a run must cover real territory before it
    /// counts as a sweep).
    run_lo: Val,
    /// Length of the current run of non-adjacent predicates.
    seq_break: u32,
    /// Sticky sequential-sweep flag (entered at [`SEQ_RUN_ON`], left at
    /// [`SEQ_RUN_OFF`]).
    seq_mode: bool,
    /// Stochastic-approximation median of observed lower bounds.
    med: Val,
    /// Observed span of query locations (for scaling the median step
    /// and the hot-zone width).
    span_lo: Val,
    span_hi: Val,
    /// Queries in the decayed window that landed near the median.
    hot_hits: u32,
    /// Total queries in the decayed window.
    recent: u32,
}

impl WorkloadStats {
    /// Fresh tracker with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total predicates observed.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// `true` while the tracker classifies the workload as a sequential
    /// sweep.
    pub fn sequential_mode(&self) -> bool {
        self.seq_mode
    }

    /// Fraction (numerator, denominator) of recent queries that landed
    /// in the hot zone around the running median.
    pub fn hot_fraction(&self) -> (u32, u32) {
        (self.hot_hits, self.recent)
    }

    /// Fold one predicate into the tracker. O(1), allocation-free.
    pub fn observe(&mut self, pred: &RangePred) {
        self.queries += 1;
        // A predicate with no bounds (full scan) carries no locality
        // signal; count it and keep every other signal untouched.
        let (lo_b, hi_b) = (pred.lo.as_ref(), pred.hi.as_ref());
        let (lo, hi) = match (lo_b, hi_b) {
            (None, None) => return,
            (Some(l), Some(h)) => (l.value, h.value),
            (Some(l), None) => (l.value, l.value),
            (None, Some(h)) => (h.value, h.value),
        };
        self.located += 1;
        if self.located == 1 {
            // First located predicate: seed the span and median.
            self.span_lo = lo;
            self.span_hi = hi;
            self.med = lo;
            self.last_lo = lo;
            self.last_hi = hi;
            self.recent = 1;
            self.hot_hits = 1;
            return;
        }
        self.span_lo = self.span_lo.min(lo);
        self.span_hi = self.span_hi.max(hi);
        let span = (self.span_hi - self.span_lo).max(1);

        // Sequential-run detection: the new predicate starts to the
        // right of the old one, within one stripe width of its end, and
        // *advances the frontier* (`hi` grows). The frontier test is
        // what separates a sweep from a drill-down: nested zooms also
        // move `lo` rightward, but their upper bound shrinks — plying
        // them with anti-sweep cracking would pay a whole-array
        // prepartition for a session that never leaves its panel.
        let width = (hi - lo).max(1);
        let adjacent =
            lo > self.last_lo && hi > self.last_hi && lo <= self.last_hi.saturating_add(width);
        if adjacent {
            if self.seq_run == 0 {
                self.run_lo = self.last_lo;
            }
            self.seq_run += 1;
            self.seq_break = 0;
            // Displacement gate: only a run that has already ploughed a
            // real fraction of the observed span is a sweep. Local
            // stripe bursts (adjacent bins inside one panel) stay under
            // the gate and keep exact cracking.
            let covered = hi.saturating_sub(self.run_lo);
            if self.seq_run >= SEQ_RUN_ON && covered.saturating_mul(16) >= span {
                self.seq_mode = true;
            }
        } else {
            self.seq_break += 1;
            self.seq_run = 0;
            if self.seq_break >= SEQ_RUN_OFF {
                self.seq_mode = false;
            }
        }
        self.last_lo = lo;
        self.last_hi = hi;

        // Hot-range skew: a windowed count of queries landing within
        // span/8 of a stochastic-approximation median of lower bounds.
        if (lo - self.med).abs() * 8 < span {
            self.hot_hits += 1;
        }
        self.recent += 1;
        let step = (span / 64).max(1);
        if lo > self.med {
            self.med += step;
        } else if lo < self.med {
            self.med -= step;
        }
        if self.recent >= SKEW_WINDOW {
            self.recent /= 2;
            self.hot_hits /= 2;
        }
    }
}

/// Pure decision function: map workload signals plus the structure's
/// current shape (`boundaries` cracker-index entries over `len` tuples)
/// to the static policy the next crack should run under.
///
/// Priority order mirrors the severity of the pathologies: sequential
/// sweeps cost O(n) *per query* under exact cracking, so they win;
/// boundary bloat costs index growth and per-crack work, so it comes
/// second; everything else gets the paper's exact cracking.
///
/// Hot-range skew deliberately maps to `Standard`: exact cracking
/// *converges* inside a hot zone after a handful of queries (the paper's
/// §4.2 result), so the skew counter's job is to veto the coarse
/// downgrade — a skewed workload that matured its index is still best
/// served by exact cracks in the zone it keeps revisiting.
pub fn decide(stats: &WorkloadStats, boundaries: usize, len: usize) -> CrackPolicy {
    if stats.sequential_mode() {
        // A marching sweep touches each boundary once and moves on: the
        // exact crack per stripe edge never pays for itself, while
        // coarse-granular leaves stop splitting once the plough is
        // memory-bandwidth-bound anyway. (Under the block kernels the
        // huge-virgin-piece case is already covered by the radix
        // prepartition, so the anti-sweep answer is fewer cracks — not
        // randomized pivots.)
        return CrackPolicy::coarse();
    }
    // AVL-growth cap: once the average piece is below half the coarse
    // leaf size the index has stopped paying for itself.
    let min_piece = crate::policy::DEFAULT_COARSE_MIN_PIECE;
    let dense = boundaries >= 64 && boundaries.saturating_mul(min_piece) > len.saturating_mul(2);
    // Mature scattered workload: predicates spread out (no hot zone
    // soaking up the cracks), index already carved — coarse leaves stop
    // paying the per-query crack/insert tax on pieces that will never
    // be revisited.
    let (hot, recent) = stats.hot_fraction();
    let scattered = recent >= SKEW_MIN_RECENT
        && hot.saturating_mul(2) < recent
        && boundaries >= MATURE_BOUNDARIES;
    if dense || scattered {
        return CrackPolicy::coarse();
    }
    CrackPolicy::Standard
}

/// Per-structure policy selector.
///
/// Owns a configured [`CrackPolicy`] plus (when the configured policy is
/// [`CrackPolicy::Adaptive`]) the workload tracker that drives per-query
/// re-decisions. For a static configured policy the advisor is inert:
/// `observe` is a branch and a return, and `effective()` never changes.
#[derive(Debug, Clone, Copy)]
pub struct PolicyAdvisor {
    configured: CrackPolicy,
    stats: WorkloadStats,
    effective: CrackPolicy,
    switches: u64,
    /// The owning structure does not profit from the anti-sweep coarse
    /// downgrade: it cracks multi-column units (sideways map pairs)
    /// where every tape entry moves two physical columns and later maps
    /// re-align by replaying the tape — quantized sweep cracks leave
    /// stripe edges buried inside leaves that every replayed map then
    /// re-filters. For such structures a sweep decision resolves to
    /// `Standard` (measured fastest on map sweeps since the block
    /// kernels landed).
    sweep_immune: bool,
}

impl PolicyAdvisor {
    /// Advisor for a structure configured with `policy`. An adaptive
    /// advisor starts out effective-Standard (the paper's behaviour)
    /// until the workload says otherwise.
    pub fn new(policy: CrackPolicy) -> Self {
        let effective = if policy.is_adaptive() {
            CrackPolicy::Standard
        } else {
            policy
        };
        PolicyAdvisor {
            configured: policy,
            stats: WorkloadStats::new(),
            effective,
            switches: 0,
            sweep_immune: false,
        }
    }

    /// Advisor for a structure that does not profit from anti-sweep
    /// cracking (multi-column sideways map pairs): sequential-sweep
    /// decisions resolve to `Standard` instead of coarse. Deterministic
    /// — the flag is a static property of the structure, not of the
    /// workload.
    pub fn new_sweep_immune(policy: CrackPolicy) -> Self {
        PolicyAdvisor {
            sweep_immune: true,
            ..Self::new(policy)
        }
    }

    /// The policy the structure was configured with (possibly
    /// `Adaptive`).
    pub fn configured(&self) -> CrackPolicy {
        self.configured
    }

    /// The static policy the next crack should run under.
    pub fn effective(&self) -> CrackPolicy {
        self.effective
    }

    /// How many times the effective policy has changed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The underlying workload tracker.
    pub fn stats(&self) -> &WorkloadStats {
        &self.stats
    }

    /// Observe one logical query against a structure currently shaped as
    /// `boundaries` index entries over `len` tuples, and return the
    /// effective policy for it. Inert (constant-time, stats untouched)
    /// unless configured adaptive.
    pub fn observe(&mut self, pred: &RangePred, boundaries: usize, len: usize) -> CrackPolicy {
        if !self.configured.is_adaptive() {
            return self.effective;
        }
        self.stats.observe(pred);
        let mut next = decide(&self.stats, boundaries, len);
        if self.sweep_immune && self.stats.sequential_mode() {
            next = CrackPolicy::Standard;
        }
        if next != self.effective {
            self.switches += 1;
            self.effective = next;
        }
        self.effective
    }
}

/// Retention score for cache-style eviction of cracker maps and partial
/// chunks: recency boosted by log-frequency, so a structure that has
/// earned many accesses survives [`RETENTION_GRACE`] clock ticks per
/// doubling beyond what pure recency would grant. Higher scores are
/// worth keeping; evict the minimum. Deterministic and integral, so
/// eviction order is stable across runs.
pub fn retention_score(accesses: u64, last_access: u64) -> u64 {
    let freq = 63 - (accesses + 1).leading_zeros() as u64;
    last_access.saturating_add(freq * RETENTION_GRACE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(lo: Val, hi: Val) -> RangePred {
        RangePred::open(lo, hi)
    }

    #[test]
    fn sequential_sweep_enters_and_leaves_coarse() {
        let mut a = PolicyAdvisor::new(CrackPolicy::Adaptive);
        assert_eq!(a.effective(), CrackPolicy::Standard);
        let mut lo = 0;
        for _ in 0..SEQ_RUN_ON as i64 + 2 {
            a.observe(&open(lo, lo + 101), 10, 1 << 20);
            lo += 100;
        }
        assert_eq!(a.effective(), CrackPolicy::coarse());
        assert!(a.switches() >= 1);
        // A burst of scattered queries leaves sweep mode again.
        let spots = [901_234, 17, 500_000, 44_000, 999_000, 3, 700_500, 123_456, 42];
        for (i, s) in spots.iter().enumerate() {
            a.observe(&open(*s, *s + 101), 10, 1 << 20);
            let _ = i;
        }
        assert_eq!(a.effective(), CrackPolicy::Standard);
    }

    #[test]
    fn sweep_immune_advisor_resolves_sweeps_to_standard() {
        let mut a = PolicyAdvisor::new_sweep_immune(CrackPolicy::Adaptive);
        let mut lo = 0;
        for _ in 0..SEQ_RUN_ON as i64 + 2 {
            a.observe(&open(lo, lo + 101), 10, 1 << 20);
            lo += 100;
        }
        assert!(a.stats().sequential_mode());
        assert_eq!(a.effective(), CrackPolicy::Standard);
        assert_eq!(a.switches(), 0);
    }

    #[test]
    fn hot_range_skew_keeps_exact_cracking() {
        let mut a = PolicyAdvisor::new(CrackPolicy::Adaptive);
        // Deterministic LCG: 90% of queries inside a 5%-wide hot zone.
        // Exact cracking converges inside the zone, so even on a mature
        // index (boundaries past the scatter threshold) the advisor
        // must stay Standard — the skew counter vetoes the downgrade.
        let mut x = 12345u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let domain = 1_000_000i64;
        for _ in 0..200 {
            let r = rng();
            let lo = if r % 10 < 9 {
                (r % 50_000) as i64 // hot: [0, 5%)
            } else {
                (r % (domain as u64)) as i64
            };
            a.observe(&open(lo, lo + 1000), MATURE_BOUNDARIES * 4, 1 << 22);
        }
        assert_eq!(a.effective(), CrackPolicy::Standard);
    }

    #[test]
    fn mature_scattered_workload_downgrades_to_coarse() {
        let mut a = PolicyAdvisor::new(CrackPolicy::Adaptive);
        let mut x = 555u64;
        for i in 0..300usize {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lo = ((x >> 33) % 4_000_000) as i64;
            // Index matures past the boundary threshold mid-run.
            let boundaries = 2 * i;
            a.observe(&open(lo, lo + 500), boundaries, 1 << 22);
        }
        assert_eq!(a.effective(), CrackPolicy::coarse());
        // A sweep (stripes wide enough to clear the displacement gate
        // against the 4M span) still arms sequential mode on top of the
        // mature downgrade — both resolve to coarse leaves, so the
        // effective policy is stable, not flip-flopping.
        let mut lo = 0;
        for _ in 0..SEQ_RUN_ON as i64 + 1 {
            a.observe(&open(lo, lo + 300_001), 600, 1 << 22);
            lo += 300_000;
        }
        assert!(a.stats().sequential_mode());
        assert_eq!(a.effective(), CrackPolicy::coarse());
    }

    #[test]
    fn drill_down_zooms_are_not_a_sweep() {
        let mut a = PolicyAdvisor::new(CrackPolicy::Adaptive);
        // Nested zooms: lo creeps rightward but hi shrinks — the
        // frontier never advances. The advisor must keep exact
        // cracking: a drill-down revisits the pieces it carves, which is
        // exactly where coarse leaves would charge a rescan per query.
        let (mut lo, mut hi) = (0i64, 1 << 20);
        for _ in 0..40 {
            let w = (hi - lo).max(30);
            lo += w / 10;
            hi = lo + (w - w / 3).max(10);
            a.observe(&open(lo, hi), 20, 1 << 22);
        }
        assert_eq!(a.effective(), CrackPolicy::Standard);
        assert_eq!(a.switches(), 0);
    }

    #[test]
    fn local_bin_stripes_stay_under_the_displacement_gate() {
        let mut a = PolicyAdvisor::new(CrackPolicy::Adaptive);
        let domain = 16_000_000i64;
        // Establish the span with two far-apart panels, then scan 12
        // adjacent bins inside one narrow panel. The bins are a genuine
        // adjacent-rightward run, but they cover < span/16 — binned
        // aggregation over a panel is not a sweep.
        a.observe(&open(0, 1000), 10, 1 << 24);
        a.observe(&open(domain - 1000, domain), 10, 1 << 24);
        for round in 0..4 {
            let base = 2_000_000 + round * 1_000_000;
            for b in 0..12i64 {
                a.observe(&open(base + b * 500, base + b * 500 + 500), 10, 1 << 24);
            }
        }
        assert_eq!(a.effective(), CrackPolicy::Standard);
        assert_eq!(a.switches(), 0);
    }

    #[test]
    fn random_workload_stays_standard() {
        let mut a = PolicyAdvisor::new(CrackPolicy::Adaptive);
        let mut x = 777u64;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lo = ((x >> 33) % 1_000_000) as i64;
            a.observe(&open(lo, lo + 500), 64, 1 << 22);
        }
        assert_eq!(a.effective(), CrackPolicy::Standard);
    }

    #[test]
    fn boundary_density_caps_index_growth() {
        let mut a = PolicyAdvisor::new(CrackPolicy::Adaptive);
        // Scattered workload, but the structure is already shattered:
        // 4096 boundaries over 2^20 tuples → avg piece 256 < 1024/2.
        let mut x = 99u64;
        for _ in 0..4 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lo = ((x >> 33) % 1_000_000) as i64;
            a.observe(&open(lo, lo + 100), 1 << 12, 1 << 20);
        }
        assert_eq!(a.effective(), CrackPolicy::coarse());
    }

    #[test]
    fn static_advisors_are_inert() {
        for p in CrackPolicy::all() {
            let mut a = PolicyAdvisor::new(p);
            for i in 0..100i64 {
                let got = a.observe(&open(i * 10, i * 10 + 11), 5, 1 << 16);
                assert_eq!(got, p);
            }
            assert_eq!(a.switches(), 0);
            assert_eq!(a.stats().queries(), 0);
        }
    }

    #[test]
    fn advisor_is_a_deterministic_fold() {
        let preds: Vec<RangePred> = (0..64i64)
            .map(|i| open((i * 7919) % 100_000, (i * 7919) % 100_000 + 333))
            .collect();
        let mut a = PolicyAdvisor::new(CrackPolicy::Adaptive);
        let mut b = PolicyAdvisor::new(CrackPolicy::Adaptive);
        for p in &preds {
            let pa = a.observe(p, 7, 1 << 18);
            let pb = b.observe(p, 7, 1 << 18);
            assert_eq!(pa, pb);
            assert_eq!(a.stats(), b.stats());
        }
        assert_eq!(a.switches(), b.switches());
    }

    #[test]
    fn unbounded_predicates_carry_no_locality_signal() {
        let mut a = PolicyAdvisor::new(CrackPolicy::Adaptive);
        for _ in 0..100 {
            a.observe(&RangePred::all(), 5, 1 << 16);
        }
        assert_eq!(a.effective(), CrackPolicy::Standard);
        assert_eq!(a.stats().queries(), 100);
    }

    #[test]
    fn retention_score_prefers_frequency_within_grace() {
        // Same recency, more accesses → higher score.
        assert!(retention_score(100, 50) > retention_score(1, 50));
        // Zero accesses degrade to pure recency.
        assert_eq!(retention_score(0, 50), 50);
        // Enough recency always wins over frequency eventually.
        assert!(retention_score(0, 10_000) > retention_score(1 << 20, 50));
    }
}
