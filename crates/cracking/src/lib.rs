#![warn(missing_docs)]
//! # crackdb-cracking
//!
//! Selection-based database cracking (Idreos, Kersten, Manegold;
//! CIDR 2007) with ripple updates (SIGMOD 2007): the foundation and the
//! baseline of the SIGMOD 2009 sideways-cracking paper.
//!
//! Provided building blocks, all reused by `crackdb-core` for sideways
//! cracking:
//!
//! * [`avl::AvlTree`] — arena AVL tree with lazy deletion;
//! * [`crack`] — the crack-in-two / crack-in-three partition kernels;
//! * [`index::CrackerIndex`] — boundary bookkeeping + §3.3 histogram
//!   estimates;
//! * [`cracked::CrackedArray`] — a generic two-column cracked array with
//!   ripple insert/delete;
//! * [`column::CrackerColumn`] — the selection-cracking baseline
//!   (`crackers.select`) with pending-update queues;
//! * [`policy::CrackPolicy`] — pluggable pivot-choice strategies
//!   (standard / stochastic / coarse-granular) hardening cracking
//!   against adversarial workloads (sequential sweeps, hot-region
//!   skew);
//! * [`advisor::PolicyAdvisor`] — per-structure self-tuning: O(1)
//!   workload statistics ([`advisor::WorkloadStats`]) plus a pure
//!   decision function that resolves [`policy::CrackPolicy::Adaptive`]
//!   into one of the static strategies per query.

pub mod advisor;
pub mod arena;
pub mod avl;
pub mod column;
pub mod crack;
pub mod cracked;
pub mod index;
pub mod kernel;
pub mod policy;
pub mod snapshot;

pub use advisor::{retention_score, PolicyAdvisor, WorkloadStats};
pub use arena::{Arena, SlotId};
pub use column::CrackerColumn;
pub use crack::BoundKind;
pub use cracked::CrackedArray;
pub use index::{BoundaryKey, CrackerIndex, SizeEstimate};
pub use kernel::{active_kernel, CrackKernel};
pub use policy::{CrackPolicy, Span};
pub use snapshot::{converged_piece_cap, ColumnSnapshot, PieceSnap, SnapSpan, SnapshotBuilder};
