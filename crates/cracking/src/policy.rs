//! Pluggable crack-pivot policies: how a cracked structure chooses its
//! physical split points for a query predicate.
//!
//! The paper (and the CIDR'07 baseline) always crack *exactly* at the
//! query's predicate bounds. That choice is optimal for repeated and
//! random workloads but pathological for two adversarial patterns the
//! interactive-exploration benchmarks stress:
//!
//! * **Sequential sweeps** (`Pattern::Sequential`) leave one huge
//!   uncracked tail piece that every query re-partitions — per-query
//!   cost stays O(n) instead of converging.
//! * **Skewed drill-downs** shatter a hot value region into thousands of
//!   tiny pieces, bloating the AVL cracker index with boundaries that
//!   never pay for themselves.
//!
//! [`CrackPolicy`] makes the pivot choice pluggable:
//!
//! * [`CrackPolicy::Standard`] — crack exactly at the predicate bounds
//!   (the paper's behaviour, bit-for-bit).
//! * [`CrackPolicy::Stochastic`] — before cracking at a bound whose
//!   enclosing piece is still large, recursively inject *advisory*
//!   pivots (data values at pseudo-random positions) so pieces halve on
//!   every touch, à la stochastic cracking (Halim et al., VLDB 2012).
//! * [`CrackPolicy::CoarseGranular`] — never split a piece at or below
//!   `min_piece` tuples; the query filters inside the leaf piece
//!   instead, capping AVL growth under skew.
//!
//! * [`CrackPolicy::Adaptive`] — let a per-column
//!   [`PolicyAdvisor`](crate::advisor::PolicyAdvisor) pick one of the
//!   three static strategies above per query, from O(1) workload
//!   statistics (sequential-run detection, hot-range skew counters,
//!   boundary-density caps). The structures that own an advisor resolve
//!   `Adaptive` to an *effective* static policy before every crack; the
//!   partition kernels themselves never see it.
//!
//! **Determinism contract.** Alignment in sideways and partial sideways
//! cracking replays tape-logged predicates on sibling structures and
//! requires bit-identical physical outcomes. Every static policy is
//! therefore a *pure function of the array state and the predicate*:
//! the stochastic pivot is derived by hashing the enclosing piece's
//! coordinates (plus the policy seed) into a position and reading the
//! data value there — no mutable RNG state — so two aligned siblings
//! replaying the same tape choose identical pivots. A structure's
//! *effective* policy may change between queries (that is what
//! `Adaptive` does), but every tape entry records the effective static
//! policy the original crack ran under, and replay always uses the
//! logged policy — never the owner's current one — so siblings,
//! late-created maps and spill-reloaded chunks reproduce each historic
//! crack bit-for-bit regardless of what the advisor has decided since.

/// How many tuples a piece may hold before [`CrackPolicy::Stochastic`]
/// stops injecting advisory pivots and cracks exactly.
pub const DEFAULT_STOCHASTIC_MIN_PIECE: usize = 1 << 10;

/// Default leaf-piece size for [`CrackPolicy::CoarseGranular`].
pub const DEFAULT_COARSE_MIN_PIECE: usize = 1 << 10;

/// Default seed mixed into the stochastic pivot hash.
pub const DEFAULT_STOCHASTIC_SEED: u64 = 0x0C4A_C4DB_0000_51DE;

/// Smallest uncracked piece the radix-prepartition fast path bothers
/// with: below this, one blocked crack-in-two pass is already cheap and
/// the advisory boundaries would not pay for their AVL nodes.
pub const PREPARTITION_MIN_PIECE: usize = 1 << 20;

/// Piece size the prepartition aims for: roughly L2-resident pieces, so
/// every later crack of a seeded piece is cache-friendly.
pub const PREPARTITION_TARGET_PIECE: usize = 1 << 16;

/// The pivot-choice strategy of a cracked structure. See the module docs
/// for the behavioural and determinism contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrackPolicy {
    /// Crack exactly at the query's predicate bounds — the paper's
    /// behaviour, reproduced bit-for-bit (the default).
    #[default]
    Standard,
    /// Inject deterministic pseudo-random *advisory* pivots into large
    /// enclosing pieces before the exact crack, so pieces halve even
    /// under sequential sweeps.
    Stochastic {
        /// Seed mixed into the pivot-position hash. Two structures that
        /// must stay aligned must share the seed.
        seed: u64,
    },
    /// Stop splitting pieces at or below `min_piece` tuples; queries
    /// filter inside the leaf piece instead of cracking it.
    CoarseGranular {
        /// Smallest piece the policy is willing to split.
        min_piece: usize,
    },
    /// Defer the choice to a per-structure
    /// [`PolicyAdvisor`](crate::advisor::PolicyAdvisor), which picks one
    /// of the three static strategies per query from O(1) workload
    /// statistics. Structures resolve this to an effective static policy
    /// before cracking; if a kernel ever sees it directly it behaves
    /// like [`CrackPolicy::Standard`].
    Adaptive,
}

impl CrackPolicy {
    /// Stochastic policy with the default seed.
    pub fn stochastic() -> Self {
        CrackPolicy::Stochastic {
            seed: DEFAULT_STOCHASTIC_SEED,
        }
    }

    /// Coarse-granular policy with the default leaf size.
    pub fn coarse() -> Self {
        CrackPolicy::CoarseGranular {
            min_piece: DEFAULT_COARSE_MIN_PIECE,
        }
    }

    /// Short machine-readable name (benchmark output, CI matrices).
    pub fn label(&self) -> &'static str {
        match self {
            CrackPolicy::Standard => "standard",
            CrackPolicy::Stochastic { .. } => "stochastic",
            CrackPolicy::CoarseGranular { .. } => "coarse",
            CrackPolicy::Adaptive => "adaptive",
        }
    }

    /// Parse a policy name: `standard`, `stochastic` (default seed),
    /// `coarse` (default leaf size), `coarse:<min_piece>` or `adaptive`.
    ///
    /// This is pure string parsing; the `CRACKDB_POLICY` environment
    /// hook the engine constructors consume lives next to the other env
    /// parsing in `crackdb-engine`'s `exec` module (`policy_from_env` /
    /// `env_policy`), where an invalid value is a recoverable startup
    /// error instead of a panic inside a library constructor.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        match s {
            "" | "standard" => Some(CrackPolicy::Standard),
            "stochastic" => Some(CrackPolicy::stochastic()),
            "coarse" => Some(CrackPolicy::coarse()),
            "adaptive" => Some(CrackPolicy::Adaptive),
            _ => {
                let rest = s.strip_prefix("coarse:")?;
                let min_piece: usize = rest.parse().ok()?;
                Some(CrackPolicy::CoarseGranular {
                    min_piece: min_piece.max(1),
                })
            }
        }
    }

    /// The piece size the radix-prepartition fast path should target
    /// under this policy. Coarse-granular cracking promises never to
    /// manufacture pieces below its leaf size, so its target is clamped
    /// up to `min_piece`; the other policies take the cache-friendly
    /// default. (Like every policy decision this is a pure function, so
    /// aligned siblings prepartition identically.)
    pub fn prepartition_target(&self) -> usize {
        match *self {
            CrackPolicy::Standard
            | CrackPolicy::Stochastic { .. }
            | CrackPolicy::Adaptive => PREPARTITION_TARGET_PIECE,
            CrackPolicy::CoarseGranular { min_piece } => PREPARTITION_TARGET_PIECE.max(min_piece),
        }
    }

    /// `true` for the self-tuning variant that needs an advisor to
    /// resolve it into a static policy.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, CrackPolicy::Adaptive)
    }

    /// The three static policy families at their defaults, for sweeps.
    /// (`Adaptive` is excluded: it is not a pivot strategy itself, only
    /// a per-query selector over these three.)
    pub fn all() -> [CrackPolicy; 3] {
        [
            CrackPolicy::Standard,
            CrackPolicy::stochastic(),
            CrackPolicy::coarse(),
        ]
    }

    /// Every parseable policy family at its defaults, adaptive included
    /// — what benchmark sweeps and CI matrices iterate.
    pub fn all_selectable() -> [CrackPolicy; 4] {
        [
            CrackPolicy::Standard,
            CrackPolicy::stochastic(),
            CrackPolicy::coarse(),
            CrackPolicy::Adaptive,
        ]
    }
}

/// The qualifying area a policy-aware crack produced.
///
/// Under [`CrackPolicy::Standard`] and [`CrackPolicy::Stochastic`] the
/// span is always **exact**: every tuple in `[start, end)` satisfies the
/// predicate. Under [`CrackPolicy::CoarseGranular`] a declined split
/// leaves the span **inexact** — a superset delimited by the enclosing
/// leaf pieces — and the caller must filter head values by the
/// predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First position of the (super)set of qualifying tuples.
    pub start: usize,
    /// One past the last position.
    pub end: usize,
    /// `true` when every tuple in the span satisfies the predicate.
    pub exact: bool,
}

impl Span {
    /// Exact span covering `[start, end)`.
    pub fn exact(start: usize, end: usize) -> Self {
        Span {
            start,
            end,
            exact: true,
        }
    }

    /// The `(start, end)` pair.
    pub fn range(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    /// Number of tuples in the span (qualifying count only when exact).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the span holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// splitmix64 finalizer: the stateless hash behind stochastic pivot
/// positions. Pure, so tape replay on aligned siblings reproduces the
/// same pivot from the same piece coordinates.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_labels() {
        for p in CrackPolicy::all_selectable() {
            assert_eq!(CrackPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(CrackPolicy::parse("adaptive"), Some(CrackPolicy::Adaptive));
        assert!(CrackPolicy::Adaptive.is_adaptive());
        assert!(!CrackPolicy::Standard.is_adaptive());
        assert_eq!(CrackPolicy::parse(""), Some(CrackPolicy::Standard));
        assert_eq!(
            CrackPolicy::parse("coarse:64"),
            Some(CrackPolicy::CoarseGranular { min_piece: 64 })
        );
        assert_eq!(
            CrackPolicy::parse("coarse:0"),
            Some(CrackPolicy::CoarseGranular { min_piece: 1 })
        );
        assert_eq!(CrackPolicy::parse("nonsense"), None);
        assert_eq!(CrackPolicy::parse("coarse:x"), None);
    }

    #[test]
    fn mix64_is_deterministic_and_spreading() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Sequential inputs spread across the space (no tiny cycle).
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            seen.insert(mix64(i) % 1024);
        }
        assert!(seen.len() > 500);
    }

    #[test]
    fn span_helpers() {
        let s = Span::exact(3, 7);
        assert_eq!(s.range(), (3, 7));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(Span::exact(5, 5).is_empty());
    }
}
