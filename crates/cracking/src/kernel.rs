//! Runtime selection of the physical partitioning kernel.
//!
//! The crack-in-two / crack-in-three reorganization kernels come in two
//! implementations with identical *logical* results (same split
//! positions, permutation-equivalent piece contents):
//!
//! * [`CrackKernel::Scalar`] — the paper's element-at-a-time Hoare /
//!   Dutch-national-flag loops. One unpredictable branch per tuple, so
//!   on random data the loop is bounded by branch mispredicts rather
//!   than memory bandwidth.
//! * [`CrackKernel::Block`] — BlockQuicksort-style buffered
//!   partitioning: membership of each 64-tuple block is computed as a
//!   branch-free bit mask (comparisons as arithmetic — autovectorizable
//!   on stable Rust without `std::simd`), offsets-to-swap are taken
//!   from the masks with `trailing_zeros`, and head/tail swaps are
//!   paired between a left and a right block. The default.
//!
//! The kernel is selected once per process from the `CRACKDB_KERNEL`
//! environment variable (`scalar` | `block`; unset/empty means `block`)
//! and then never changes, mirroring the crack-policy determinism
//! contract: sideways alignment replays tape-logged predicates on
//! sibling structures and requires bit-identical physical outcomes, so
//! all structures in a process must partition with the same kernel.
//! Within one kernel, replay is fully deterministic.
//!
//! Like `CRACKDB_POLICY`, the *strict* validation of the environment
//! value lives in `crackdb-engine`'s `exec` module (`env_kernel`),
//! where a typo in a CI matrix fails loudly at service startup. The
//! read here is lenient — an invalid value warns once and falls back
//! to the block kernel — because the dispatch happens deep inside the
//! partitioning hot path where a library user must not be panicked by
//! an unrelated environment variable.

use std::sync::OnceLock;

/// Which physical partitioning kernel the crack operations use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrackKernel {
    /// Element-at-a-time branching loops (the paper's kernels,
    /// bit-for-bit).
    Scalar,
    /// Branch-free block-predicated kernels with mask-buffered paired
    /// swaps, plus the radix-prepartition fast path for huge uncracked
    /// pieces (the default).
    #[default]
    Block,
}

impl CrackKernel {
    /// Short machine-readable name (benchmark output, CI matrices).
    pub fn label(&self) -> &'static str {
        match self {
            CrackKernel::Scalar => "scalar",
            CrackKernel::Block => "block",
        }
    }

    /// Parse a kernel name: `scalar` or `block`; empty means the
    /// default (`block`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "" | "block" => Some(CrackKernel::Block),
            "scalar" => Some(CrackKernel::Scalar),
            _ => None,
        }
    }

    /// Both kernels, for sweeps and differential comparisons.
    pub fn all() -> [CrackKernel; 2] {
        [CrackKernel::Scalar, CrackKernel::Block]
    }
}

/// The process-wide active kernel: the `CRACKDB_KERNEL` environment
/// selection, read once on first use. Invalid values warn once and fall
/// back to [`CrackKernel::Block`] (see the module docs for why this
/// read is lenient while `crackdb-engine::exec::env_kernel` is strict).
pub fn active_kernel() -> CrackKernel {
    static KERNEL: OnceLock<CrackKernel> = OnceLock::new();
    // This file is one of the two sanctioned env-registry files (L004).
    #[allow(clippy::disallowed_methods)]
    *KERNEL.get_or_init(|| match std::env::var("CRACKDB_KERNEL") {
        Err(_) => CrackKernel::Block,
        Ok(v) => CrackKernel::parse(&v).unwrap_or_else(|| {
            eprintln!(
                "warning: CRACKDB_KERNEL={v:?} is not a crack kernel \
                 (expected scalar | block); falling back to block"
            );
            CrackKernel::Block
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_labels() {
        for k in CrackKernel::all() {
            assert_eq!(CrackKernel::parse(k.label()), Some(k));
        }
        assert_eq!(CrackKernel::parse(""), Some(CrackKernel::Block));
        assert_eq!(CrackKernel::parse(" block "), Some(CrackKernel::Block));
        assert_eq!(CrackKernel::parse("simd"), None);
        assert_eq!(CrackKernel::default(), CrackKernel::Block);
    }

    #[test]
    fn active_kernel_is_stable() {
        // Whatever the environment selects, repeated reads agree (the
        // determinism contract: one kernel per process, forever).
        assert_eq!(active_kernel(), active_kernel());
    }
}
