//! Arena-allocated AVL tree used as the cracker index.
//!
//! The paper attaches an AVL tree to every cracker column / cracker map /
//! chunk to record how crack values partition the physical array. We need
//! a few operations beyond a stock ordered map, which is why this is a
//! bespoke implementation:
//!
//! * `floor` / `ceil` neighbour queries to locate the piece a value falls
//!   into;
//! * in-order piece walks (the index doubles as a *self-organizing
//!   histogram*, §3.3);
//! * **lazy deletion** (§4.1): when a chunk is dropped, its boundary nodes
//!   are only marked deleted so the partitioning knowledge can be revived
//!   if the chunk is recreated;
//! * bulk position shifting, needed when ripple updates grow or shrink the
//!   underlying array.
//!
//! Nodes live in a per-column [`Arena`] and link by `u32` slot index, so
//! each index is one contiguous allocation: lookups walk a single
//! cache-friendly buffer (no `Box` pointer chasing), and insertion is
//! iterative over an explicit path stack — no recursion in the hot path.

use crate::arena::{Arena, SlotId, NO_SLOT};
use std::cmp::Ordering;

/// Index of a node inside the arena.
type NodeId = SlotId;
const NIL: NodeId = NO_SLOT;

/// Deepest possible path through the tree: AVL height is below
/// `1.44 * log2(n)` and node ids are `u32`, so 64 frames always fit.
const MAX_HEIGHT: usize = 64;

/// An AVL tree mapping ordered keys `K` to a payload position, with lazy
/// deletion marks.
#[derive(Debug, Clone)]
pub struct AvlTree<K: Ord + Copy> {
    nodes: Arena<Node<K>>,
    root: NodeId,
    live: usize,
}

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    /// Payload: position of this boundary in the cracked array.
    pos: usize,
    deleted: bool,
    left: NodeId,
    right: NodeId,
    height: i32,
}

impl<K: Ord + Copy> Default for AvlTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> AvlTree<K> {
    /// Empty tree.
    pub fn new() -> Self {
        AvlTree {
            nodes: Arena::new(),
            root: NIL,
            live: 0,
        }
    }

    /// Number of live (non-deleted) boundaries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live boundary exists.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total nodes including lazily deleted ones.
    pub fn total_nodes(&self) -> usize {
        self.nodes.slots().len()
    }

    fn height(&self, n: NodeId) -> i32 {
        if n == NIL {
            0
        } else {
            self.nodes.get(n).height
        }
    }

    fn update_height(&mut self, n: NodeId) {
        let node = self.nodes.get(n);
        let (l, r) = (node.left, node.right);
        let h = 1 + self.height(l).max(self.height(r));
        self.nodes.get_mut(n).height = h;
    }

    fn balance_factor(&self, n: NodeId) -> i32 {
        let node = self.nodes.get(n);
        self.height(node.left) - self.height(node.right)
    }

    fn rotate_right(&mut self, y: NodeId) -> NodeId {
        let x = self.nodes.get(y).left;
        let t2 = self.nodes.get(x).right;
        self.nodes.get_mut(x).right = y;
        self.nodes.get_mut(y).left = t2;
        self.update_height(y);
        self.update_height(x);
        x
    }

    fn rotate_left(&mut self, x: NodeId) -> NodeId {
        let y = self.nodes.get(x).right;
        let t2 = self.nodes.get(y).left;
        self.nodes.get_mut(y).left = x;
        self.nodes.get_mut(x).right = t2;
        self.update_height(x);
        self.update_height(y);
        y
    }

    fn rebalance(&mut self, n: NodeId) -> NodeId {
        self.update_height(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            if self.balance_factor(self.nodes.get(n).left) < 0 {
                let l = self.nodes.get(n).left;
                let new_l = self.rotate_left(l);
                self.nodes.get_mut(n).left = new_l;
            }
            return self.rotate_right(n);
        }
        if bf < -1 {
            if self.balance_factor(self.nodes.get(n).right) > 0 {
                let r = self.nodes.get(n).right;
                let new_r = self.rotate_right(r);
                self.nodes.get_mut(n).right = new_r;
            }
            return self.rotate_left(n);
        }
        n
    }

    /// Insert `key` with payload `pos`. If the key exists (even lazily
    /// deleted), it is revived/overwritten with the new position.
    ///
    /// Iterative: the descent records the root-to-leaf path in a
    /// fixed-size stack (AVL height never exceeds [`MAX_HEIGHT`]) and
    /// the rebalancing walk replays it bottom-up — no recursion, no
    /// per-level call frames.
    pub fn insert(&mut self, key: K, pos: usize) {
        let fresh = |key, pos| Node {
            key,
            pos,
            deleted: false,
            left: NIL,
            right: NIL,
            height: 1,
        };
        if self.root == NIL {
            self.root = self.nodes.alloc(fresh(key, pos));
            self.live += 1;
            return;
        }
        let mut path = [NIL; MAX_HEIGHT];
        let mut depth = 0usize;
        let mut n = self.root;
        loop {
            path[depth] = n;
            depth += 1;
            let node = self.nodes.get(n);
            match key.cmp(&node.key) {
                Ordering::Less => {
                    let l = node.left;
                    if l == NIL {
                        let new = self.nodes.alloc(fresh(key, pos));
                        self.live += 1;
                        self.nodes.get_mut(n).left = new;
                        break;
                    }
                    n = l;
                }
                Ordering::Greater => {
                    let r = node.right;
                    if r == NIL {
                        let new = self.nodes.alloc(fresh(key, pos));
                        self.live += 1;
                        self.nodes.get_mut(n).right = new;
                        break;
                    }
                    n = r;
                }
                Ordering::Equal => {
                    let node = self.nodes.get_mut(n);
                    if node.deleted {
                        node.deleted = false;
                        self.live += 1;
                    }
                    node.pos = pos;
                    return;
                }
            }
        }
        // Bottom-up rebalance along the recorded path, reattaching any
        // rotated subtree root to its parent (or the tree root).
        for i in (0..depth).rev() {
            let at = path[i];
            let new_at = self.rebalance(at);
            if new_at != at {
                if i == 0 {
                    self.root = new_at;
                } else {
                    let parent = self.nodes.get_mut(path[i - 1]);
                    if parent.left == at {
                        parent.left = new_at;
                    } else {
                        parent.right = new_at;
                    }
                }
            }
        }
    }

    /// Exact lookup of a live key; returns its position.
    pub fn get(&self, key: &K) -> Option<usize> {
        let mut n = self.root;
        while n != NIL {
            let node = self.nodes.get(n);
            match key.cmp(&node.key) {
                Ordering::Less => n = node.left,
                Ordering::Greater => n = node.right,
                Ordering::Equal => {
                    return if node.deleted { None } else { Some(node.pos) };
                }
            }
        }
        None
    }

    /// Exact lookup including lazily deleted nodes; returns
    /// `(pos, deleted)`.
    pub fn get_any(&self, key: &K) -> Option<(usize, bool)> {
        let mut n = self.root;
        while n != NIL {
            let node = self.nodes.get(n);
            match key.cmp(&node.key) {
                Ordering::Less => n = node.left,
                Ordering::Greater => n = node.right,
                Ordering::Equal => return Some((node.pos, node.deleted)),
            }
        }
        None
    }

    /// Greatest live key strictly less than `key`.
    pub fn floor_strict(&self, key: &K) -> Option<(K, usize)> {
        let mut best = None;
        let mut n = self.root;
        while n != NIL {
            let node = self.nodes.get(n);
            if node.key < *key {
                if !node.deleted {
                    best = Some((node.key, node.pos));
                    n = node.right;
                } else {
                    // Deleted node: its left subtree may still hold a live
                    // candidate, as may its right subtree (keys < `key`
                    // can live on both sides). Fall back to scanning via
                    // the right child first; correctness is kept because
                    // we only tighten `best`.
                    if let Some(b) = self.max_live_below(node.right, key) {
                        best = match best {
                            Some(cur) if cur.0 >= b.0 => Some(cur),
                            _ => Some(b),
                        };
                        break;
                    }
                    n = node.left;
                }
            } else {
                n = node.left;
            }
        }
        best
    }

    /// Smallest live key strictly greater than `key`.
    pub fn ceil_strict(&self, key: &K) -> Option<(K, usize)> {
        let mut best = None;
        let mut n = self.root;
        while n != NIL {
            let node = self.nodes.get(n);
            if node.key > *key {
                if !node.deleted {
                    best = Some((node.key, node.pos));
                    n = node.left;
                } else {
                    if let Some(b) = self.min_live_above(node.left, key) {
                        best = match best {
                            Some(cur) if cur.0 <= b.0 => Some(cur),
                            _ => Some(b),
                        };
                        break;
                    }
                    n = node.right;
                }
            } else {
                n = node.right;
            }
        }
        best
    }

    fn max_live_below(&self, n: NodeId, key: &K) -> Option<(K, usize)> {
        let mut best = None;
        self.walk_live(n, &mut |k, p| {
            if k < *key {
                best = match best {
                    Some((bk, _)) if bk >= k => best,
                    _ => Some((k, p)),
                };
            }
        });
        best
    }

    fn min_live_above(&self, n: NodeId, key: &K) -> Option<(K, usize)> {
        let mut best = None;
        self.walk_live(n, &mut |k, p| {
            if k > *key {
                best = match best {
                    Some((bk, _)) if bk <= k => best,
                    _ => Some((k, p)),
                };
            }
        });
        best
    }

    fn walk_live<F: FnMut(K, usize)>(&self, n: NodeId, f: &mut F) {
        if n == NIL {
            return;
        }
        let node = self.nodes.get(n);
        self.walk_live(node.left, f);
        if !node.deleted {
            f(node.key, node.pos);
        }
        self.walk_live(node.right, f);
    }

    /// In-order traversal of live `(key, pos)` pairs.
    pub fn iter_live(&self) -> Vec<(K, usize)> {
        let mut out = Vec::with_capacity(self.live);
        self.walk_live(self.root, &mut |k, p| out.push((k, p)));
        out
    }

    /// Lazily delete a key: the node stays in the tree, marked deleted,
    /// and can be revived by a future [`insert`](Self::insert).
    pub fn mark_deleted(&mut self, key: &K) -> bool {
        let mut n = self.root;
        while n != NIL {
            let node = self.nodes.get_mut(n);
            match key.cmp(&node.key) {
                Ordering::Less => n = node.left,
                Ordering::Greater => n = node.right,
                Ordering::Equal => {
                    if !node.deleted {
                        node.deleted = true;
                        self.live -= 1;
                        return true;
                    }
                    return false;
                }
            }
        }
        false
    }

    /// Lazily delete every live key (used when a whole chunk or map is
    /// dropped but its partitioning knowledge should be reusable).
    pub fn mark_all_deleted(&mut self) {
        for node in self.nodes.slots_mut() {
            node.deleted = true;
        }
        self.live = 0;
    }

    /// Shift the stored position of every node (live or deleted) whose
    /// position is `>= from` by `delta`. Used by ripple updates that grow
    /// (`delta = 1`) or shrink (`delta = -1`) the cracked array.
    pub fn shift_positions(&mut self, from: usize, delta: isize) {
        for node in self.nodes.slots_mut() {
            if node.pos >= from {
                node.pos = (node.pos as isize + delta) as usize;
            }
        }
    }

    /// Remove everything, including lazily deleted nodes.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.root = NIL;
        self.live = 0;
    }

    /// Verify AVL invariants (test / debug helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn rec<K: Ord + Copy>(t: &AvlTree<K>, n: NodeId, lo: Option<K>, hi: Option<K>) -> i32 {
            if n == NIL {
                return 0;
            }
            let node = t.nodes.get(n);
            if let Some(l) = lo {
                assert!(node.key > l, "BST order violated");
            }
            if let Some(h) = hi {
                assert!(node.key < h, "BST order violated");
            }
            let hl = rec(t, node.left, lo, Some(node.key));
            let hr = rec(t, node.right, Some(node.key), hi);
            assert!((hl - hr).abs() <= 1, "AVL balance violated");
            let h = 1 + hl.max(hr);
            assert_eq!(h, node.height, "stale height");
            h
        }
        rec(self, self.root, None, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut t = AvlTree::new();
        for (i, k) in [50, 20, 70, 10, 30, 60, 80].iter().enumerate() {
            t.insert(*k, i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 7);
        assert_eq!(t.get(&30), Some(4));
        assert_eq!(t.get(&31), None);
    }

    #[test]
    fn sequential_insert_stays_balanced() {
        let mut t = AvlTree::new();
        for i in 0..1000 {
            t.insert(i, i as usize);
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        assert_eq!(t.get(&999), Some(999));
    }

    #[test]
    fn floor_and_ceil() {
        let mut t = AvlTree::new();
        for k in [10, 20, 30, 40] {
            t.insert(k, k as usize);
        }
        assert_eq!(t.floor_strict(&25), Some((20, 20)));
        assert_eq!(t.floor_strict(&20), Some((10, 10)));
        assert_eq!(t.floor_strict(&10), None);
        assert_eq!(t.ceil_strict(&25), Some((30, 30)));
        assert_eq!(t.ceil_strict(&30), Some((40, 40)));
        assert_eq!(t.ceil_strict(&40), None);
    }

    #[test]
    fn lazy_deletion_skips_in_queries() {
        let mut t = AvlTree::new();
        for k in [10, 20, 30] {
            t.insert(k, k as usize);
        }
        assert!(t.mark_deleted(&20));
        assert!(!t.mark_deleted(&20));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&20), None);
        assert_eq!(t.get_any(&20), Some((20, true)));
        assert_eq!(t.floor_strict(&25), Some((10, 10)));
        assert_eq!(t.ceil_strict(&15), Some((30, 30)));
    }

    #[test]
    fn revive_deleted_key() {
        let mut t = AvlTree::new();
        t.insert(5, 100);
        t.mark_deleted(&5);
        t.insert(5, 200);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&5), Some(200));
    }

    #[test]
    fn iter_live_in_order() {
        let mut t = AvlTree::new();
        for k in [30, 10, 20, 40] {
            t.insert(k, 0);
        }
        t.mark_deleted(&20);
        let keys: Vec<_> = t.iter_live().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![10, 30, 40]);
    }

    #[test]
    fn shift_positions() {
        let mut t = AvlTree::new();
        t.insert(1, 5);
        t.insert(2, 10);
        t.insert(3, 15);
        t.shift_positions(10, 1);
        assert_eq!(t.get(&1), Some(5));
        assert_eq!(t.get(&2), Some(11));
        assert_eq!(t.get(&3), Some(16));
        t.shift_positions(0, -1);
        assert_eq!(t.get(&1), Some(4));
    }

    #[test]
    fn mark_all_deleted_then_revive() {
        let mut t = AvlTree::new();
        for k in 0..10 {
            t.insert(k, k as usize);
        }
        t.mark_all_deleted();
        assert!(t.is_empty());
        assert_eq!(t.total_nodes(), 10);
        t.insert(3, 33);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&3), Some(33));
    }

    #[test]
    fn floor_ceil_with_many_deletions() {
        let mut t = AvlTree::new();
        for k in 0..100 {
            t.insert(k, k as usize);
        }
        for k in (0..100).filter(|k| k % 2 == 0) {
            t.mark_deleted(&k);
        }
        assert_eq!(t.floor_strict(&50).map(|x| x.0), Some(49));
        assert_eq!(t.ceil_strict(&50).map(|x| x.0), Some(51));
        assert_eq!(t.floor_strict(&1).map(|x| x.0), None);
        assert_eq!(t.ceil_strict(&99).map(|x| x.0), None);
    }

    #[test]
    fn random_ops_match_btreemap() {
        use std::collections::BTreeMap;
        let mut avl = AvlTree::new();
        let mut reference = BTreeMap::new();
        let mut state = 12345u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for _ in 0..2000 {
            let k = rng() % 500;
            let op = rng() % 3;
            match op {
                0 => {
                    let p = (rng() % 10_000) as usize;
                    avl.insert(k, p);
                    reference.insert(k, p);
                }
                1 => {
                    avl.mark_deleted(&k);
                    reference.remove(&k);
                }
                _ => {
                    assert_eq!(avl.get(&k), reference.get(&k).copied(), "get({k})");
                    let f = reference.range(..k).next_back().map(|(a, b)| (*a, *b));
                    assert_eq!(avl.floor_strict(&k), f, "floor({k})");
                    let c = reference
                        .range((std::ops::Bound::Excluded(k), std::ops::Bound::Unbounded))
                        .next()
                        .map(|(a, b)| (*a, *b));
                    assert_eq!(avl.ceil_strict(&k), c, "ceil({k})");
                }
            }
        }
        avl.check_invariants();
    }
}
