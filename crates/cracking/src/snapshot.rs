//! Converged-piece snapshots: the immutable piece catalogs published to
//! the lock-free read path.
//!
//! Cracking reorganizes the array during reads, which is why every
//! select is `&mut self`. But most pieces *converge* after a warm-up:
//! their boundaries are exact, no pending update's value falls inside
//! their interval, and they are small enough that no future query will
//! want to split them further. A [`ColumnSnapshot`] freezes exactly
//! those pieces as immutable `(head, tail)` copies; pieces that have
//! not converged stay `None` and force readers back onto the owner
//! thread's sequenced path.
//!
//! A predicate *resolves* against a snapshot when every piece whose
//! value interval intersects the predicate's range is published. The
//! predicate's bounds do **not** need to coincide with piece
//! boundaries: pieces partition the array by value intervals, so the
//! boundary pieces of the overlap are filtered with
//! [`RangePred::matches`] and interior pieces qualify wholesale. This
//! is what makes the fast path useful — fresh predicates resolve
//! against an already-converged catalog without cracking anything.
//!
//! [`SnapshotBuilder`] makes republishing cheap: a piece whose
//! identity `(lo_edge, hi_edge, start, end)` is unchanged since the
//! previous build — and whose interval contained no update value since
//! then — shares its previous `Arc` instead of being recopied. This is
//! sound because every operation that touches a piece's contents
//! changes its identity (cracks change its edges; a ripple
//! insert/delete changes the target's length and shifts everything
//! above), *except* an insert/delete pair into the same piece, whose
//! length shift cancels — which is why the builder additionally
//! invalidates every piece that covered a pending-update value.

use crate::cracked::CrackedArray;
use crate::index::{pred_keys, BoundaryKey};
use crackdb_columnstore::types::{RangePred, Val};
use std::collections::HashMap;
use std::sync::Arc;

/// Convergence size cap: pieces larger than this are not published
/// even if exactly bounded, so the owner keeps cracking them (an
/// uncracked array must never trivially converge as one giant piece).
/// Scaled to the array: `n/64`, clamped to `[256, 65536]`.
pub fn converged_piece_cap(n: usize) -> usize {
    (n / 64).clamp(256, 1 << 16)
}

/// One frozen piece: parallel `(head value, tail)` copies.
#[derive(Debug)]
pub struct PieceSnap<T> {
    /// Head (crack attribute) values of the piece.
    pub head: Vec<Val>,
    /// Tail payloads (row keys for a cracker column).
    pub tail: Vec<T>,
}

/// Inclusive-exclusive span of piece indices, `[first, last)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapSpan {
    /// First piece whose interval intersects the predicate.
    pub first: usize,
    /// One past the last intersecting piece.
    pub last: usize,
}

impl SnapSpan {
    /// A span containing no pieces.
    pub fn empty() -> Self {
        SnapSpan { first: 0, last: 0 }
    }
}

/// An immutable catalog of a cracked column's pieces at publish time.
#[derive(Debug)]
pub struct ColumnSnapshot<T> {
    /// Piece-separating boundary keys, ascending; `pieces.len() - 1`
    /// entries. Piece `i` holds values right of `edges[i-1]` and left
    /// of `edges[i]`.
    edges: Vec<BoundaryKey>,
    /// Frozen pieces; `None` = not converged at publish time.
    pieces: Vec<Option<Arc<PieceSnap<T>>>>,
    /// Prefix counts of published pieces: `covered[i]` = number of
    /// `Some` among `pieces[..i]` (O(1) span-coverage checks).
    covered: Vec<u32>,
    /// Total rows in the underlying array at publish time.
    rows: usize,
}

/// Does `v` lie left of boundary `e`?
#[inline]
fn left_of(v: Val, e: &BoundaryKey) -> bool {
    e.1.belongs_left(v, e.0)
}

impl<T> ColumnSnapshot<T> {
    /// Number of pieces (published or not).
    pub fn piece_count(&self) -> usize {
        self.pieces.len()
    }

    /// Number of published (converged) pieces.
    pub fn published_count(&self) -> usize {
        *self.covered.last().unwrap_or(&0) as usize
    }

    /// Rows in the column at publish time.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Piece `i`, if it converged.
    pub fn piece(&self, i: usize) -> Option<&Arc<PieceSnap<T>>> {
        self.pieces[i].as_ref()
    }

    /// The piece index whose value interval contains `v`.
    pub fn piece_index_of(&self, v: Val) -> usize {
        self.edges.partition_point(|e| !left_of(v, e))
    }

    /// Resolve `pred` to the span of pieces intersecting its value
    /// range, or `None` if any intersecting piece is unpublished.
    ///
    /// Pieces strictly inside the span qualify wholesale; the first
    /// and last piece must be filtered with [`RangePred::matches`].
    pub fn resolve(&self, pred: &RangePred) -> Option<SnapSpan> {
        if pred.is_empty_range() {
            return Some(SnapSpan::empty());
        }
        let (lo_k, hi_k) = pred_keys(pred);
        // First piece that can hold qualifying values: skip every
        // piece fully left of the lower boundary key.
        let first = match lo_k {
            Some(k) => self.edges.partition_point(|e| *e <= k),
            None => 0,
        };
        // Last such piece: the one the upper boundary key falls into.
        let last = match hi_k {
            Some(k) => self.edges.partition_point(|e| *e < k) + 1,
            None => self.pieces.len(),
        };
        debug_assert!(first < last && last <= self.pieces.len());
        if (self.covered[last] - self.covered[first]) as usize != last - first {
            return None;
        }
        Some(SnapSpan { first, last })
    }

    /// `true` when the whole column is published (the unrestricted
    /// scan resolves).
    pub fn fully_covered(&self) -> bool {
        self.published_count() == self.piece_count()
    }
}

/// Piece identity across builds: `(lo_edge, hi_edge, start, end)`.
type PieceId = (Option<BoundaryKey>, Option<BoundaryKey>, usize, usize);

/// Incremental snapshot builder: owns the reuse cache tying each
/// build to the previous one. One builder per cracked column.
#[derive(Debug, Default)]
pub struct SnapshotBuilder<T> {
    prev: HashMap<PieceId, Arc<PieceSnap<T>>>,
    /// Pending-update values at the previous build: any of these may
    /// have been merged into the array since, so the pieces covering
    /// them must be recopied even if their identity is unchanged (an
    /// insert/delete pair into one piece cancels the length shift).
    prev_pending: Vec<Val>,
}

impl<T: Copy> SnapshotBuilder<T> {
    /// Fresh builder with an empty reuse cache.
    pub fn new() -> Self {
        SnapshotBuilder {
            prev: HashMap::new(),
            prev_pending: Vec::new(),
        }
    }

    /// Build a snapshot of `arr`. `pending` are the values of all
    /// staged-but-unmerged updates (inserts and deletes): pieces whose
    /// interval contains one are not published, because a sequenced
    /// read overlapping them must observe the merge.
    pub fn build(&mut self, arr: &CrackedArray<T>, pending: &[Val]) -> Arc<ColumnSnapshot<T>> {
        let n = arr.len();
        let bounds = arr.index().boundaries();
        let edges: Vec<BoundaryKey> = bounds.iter().map(|&(k, _)| k).collect();
        let mut cuts = Vec::with_capacity(bounds.len() + 2);
        cuts.push(0);
        cuts.extend(bounds.iter().map(|&(_, p)| p));
        cuts.push(n);
        let npieces = edges.len() + 1;

        let locate = |v: Val| edges.partition_point(|e| !left_of(v, e));
        let mut publish_dirty = vec![false; npieces];
        for &v in pending {
            publish_dirty[locate(v)] = true;
        }
        let mut reuse_dirty = publish_dirty.clone();
        for &v in &self.prev_pending {
            reuse_dirty[locate(v)] = true;
        }

        let cap = converged_piece_cap(n);
        let mut pieces = Vec::with_capacity(npieces);
        let mut next = HashMap::with_capacity(npieces);
        for i in 0..npieces {
            let (start, end) = (cuts[i], cuts[i + 1]);
            if publish_dirty[i] || end - start > cap {
                pieces.push(None);
                continue;
            }
            let lo = if i > 0 { Some(edges[i - 1]) } else { None };
            let hi = edges.get(i).copied();
            let id: PieceId = (lo, hi, start, end);
            let snap = match self.prev.get(&id) {
                Some(prev) if !reuse_dirty[i] => prev.clone(),
                _ => {
                    let (h, t) = arr.view((start, end));
                    Arc::new(PieceSnap {
                        head: h.to_vec(),
                        tail: t.to_vec(),
                    })
                }
            };
            next.insert(id, snap.clone());
            pieces.push(Some(snap));
        }
        self.prev = next;
        self.prev_pending = pending.to_vec();

        let mut covered = Vec::with_capacity(npieces + 1);
        let mut acc = 0u32;
        covered.push(acc);
        for p in &pieces {
            acc += u32::from(p.is_some());
            covered.push(acc);
        }
        Arc::new(ColumnSnapshot {
            edges,
            pieces,
            covered,
            rows: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crack::BoundKind;
    use crackdb_columnstore::types::{Bound, RangePred, RowId};

    fn pred(lo: Option<(Val, bool)>, hi: Option<(Val, bool)>) -> RangePred {
        RangePred {
            lo: lo.map(|(value, inclusive)| Bound { value, inclusive }),
            hi: hi.map(|(value, inclusive)| Bound { value, inclusive }),
        }
    }

    fn arr_0_to(n: usize) -> CrackedArray<RowId> {
        let head: Vec<Val> = (0..n as Val).collect();
        let tail: Vec<RowId> = (0..n as RowId).collect();
        CrackedArray::new(head, tail)
    }

    #[test]
    fn uncracked_array_does_not_trivially_converge() {
        let arr = arr_0_to(100_000);
        let mut b = SnapshotBuilder::new();
        let snap = b.build(&arr, &[]);
        assert_eq!(snap.piece_count(), 1);
        assert_eq!(
            snap.published_count(),
            0,
            "one giant piece must not publish"
        );
        assert!(snap.resolve(&RangePred::all()).is_none());
    }

    #[test]
    fn cracked_pieces_publish_and_resolve_with_filtering() {
        let mut arr = arr_0_to(1000);
        // Crack at 300 and 700: three pieces, all under the 256-min cap?
        // n=1000 -> cap = 256; pieces of ~300-400 exceed it, so crack more.
        for v in [200, 400, 600, 800, 100, 300, 500, 700, 900] {
            arr.ensure_boundary((v, BoundKind::Lt));
        }
        let mut b = SnapshotBuilder::new();
        let snap = b.build(&arr, &[]);
        assert!(snap.fully_covered());
        // A range not aligned to any boundary still resolves; verify
        // the filtered answer is exact.
        let p = pred(Some((250, true)), Some((650, false))); // 250 <= v < 650
        let span = snap.resolve(&p).expect("covered span");
        let mut got: Vec<Val> = Vec::new();
        for i in span.first..span.last {
            let piece = snap.piece(i).unwrap();
            let edgeish = i == span.first || i == span.last - 1;
            for &v in &piece.head {
                if !edgeish || p.matches(v) {
                    got.push(v);
                }
            }
        }
        got.sort_unstable();
        let want: Vec<Val> = (250..650).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pending_values_unpublish_their_piece_only() {
        let mut arr = arr_0_to(1000);
        for v in [100, 200, 300, 400, 500, 600, 700, 800, 900] {
            arr.ensure_boundary((v, BoundKind::Lt));
        }
        let mut b = SnapshotBuilder::new();
        let snap = b.build(&arr, &[450]);
        // Piece [400,500) is hidden; everything else resolves.
        assert!(snap
            .resolve(&pred(Some((410, true)), Some((420, true))))
            .is_none());
        assert!(snap
            .resolve(&pred(Some((100, true)), Some((399, true))))
            .is_some());
        assert!(snap
            .resolve(&pred(Some((500, true)), Some((900, false))))
            .is_some());
        assert!(snap.resolve(&RangePred::all()).is_none());
    }

    #[test]
    fn builder_reuses_untouched_pieces() {
        let mut arr = arr_0_to(1000);
        for v in [100, 200, 300, 400, 500, 600, 700, 800, 900] {
            arr.ensure_boundary((v, BoundKind::Lt));
        }
        let mut b = SnapshotBuilder::new();
        let s1 = b.build(&arr, &[]);
        let s2 = b.build(&arr, &[]);
        for i in 0..s1.piece_count() {
            assert!(Arc::ptr_eq(s1.piece(i).unwrap(), s2.piece(i).unwrap()));
        }
    }

    /// The dangerous cancellation case: a ripple insert plus a ripple
    /// delete into the *same* piece leaves its `(edges, start, end)`
    /// identity unchanged while its contents differ. The builder must
    /// recopy it (via the previous build's pending values), not reuse.
    #[test]
    fn insert_delete_cancellation_does_not_reuse_stale_piece() {
        let mut arr = arr_0_to(1000);
        for v in [100, 200, 300, 400, 500, 600, 700, 800, 900] {
            arr.ensure_boundary((v, BoundKind::Lt));
        }
        // Build with 450-insert and 455-delete still pending.
        let mut b = SnapshotBuilder::new();
        let s1 = b.build(&arr, &[450, 455]);
        assert!(
            s1.piece(4).is_none(),
            "piece [400,500) hidden while pending"
        );
        // Merge both: piece 4 gains 450, loses 455; identity unchanged.
        arr.ripple_insert(450, 9999);
        let gone = arr.ripple_delete(455, |_| true);
        assert!(gone.is_some());
        arr.check_partitioning();
        let s2 = b.build(&arr, &[]);
        let piece = s2.piece(4).expect("piece republishes after merge");
        let mut heads = piece.head.clone();
        heads.sort_unstable();
        assert!(heads.binary_search(&450).is_ok());
        assert_eq!(heads.iter().filter(|&&v| v == 450).count(), 2);
        assert!(heads.binary_search(&455).is_err());
        // Pieces far from the ripple target (below it) are reused.
        assert!(Arc::ptr_eq(s1.piece(0).unwrap(), s2.piece(0).unwrap()));
    }

    #[test]
    fn resolve_empty_range_is_empty_span() {
        let arr = arr_0_to(10);
        let mut b = SnapshotBuilder::new();
        let snap = b.build(&arr, &[]);
        let p = pred(Some((5, false)), Some((5, false))); // 5 < v < 5
        assert_eq!(snap.resolve(&p), Some(SnapSpan::empty()));
    }
}
