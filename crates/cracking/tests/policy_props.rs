//! Property tests of the [`CrackPolicy`] invariants, driven by a
//! deterministic seeded PRNG (the workspace builds offline, so no
//! `proptest` dependency — per the PR 1 conventions):
//!
//! 1. the head column is always a permutation of the input (tails
//!    follow their heads), under every policy;
//! 2. every query-mandated boundary is exact under all policies — when
//!    a boundary is recorded for a predicate bound, it resolves through
//!    the index, it is not marked advisory, and the physical
//!    partitioning honours it (and exact spans contain exactly the
//!    qualifying tuples);
//! 3. under `Pattern::Sequential`-shaped workloads the per-query
//!    touched-tuple count is sub-linear after the first k queries for
//!    the stochastic policy, while the standard policy stays Θ(n);
//! 4. the coarse-granular policy caps cracker-index growth under skew.

use crackdb_columnstore::types::{RangePred, Val};
use crackdb_cracking::index::pred_keys;
use crackdb_cracking::{CrackPolicy, CrackedArray, PolicyAdvisor};
use crackdb_rng::{rngs::StdRng, Rng, SeedableRng};

fn random_array(n: usize, domain: Val, seed: u64) -> CrackedArray<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let head: Vec<Val> = (0..n).map(|_| rng.gen_range(1..=domain)).collect();
    let tail: Vec<u32> = (0..n as u32).collect();
    CrackedArray::new(head, tail)
}

fn random_pred(rng: &mut StdRng, domain: Val) -> RangePred {
    let lo = rng.gen_range(0..domain);
    let width = rng.gen_range(0..=domain / 4);
    match rng.gen_range(0..4) {
        0 => RangePred::open(lo, lo + width + 1),
        1 => RangePred::closed(lo, lo + width),
        2 => RangePred::half_open(lo, lo + width + 1),
        _ => RangePred::point(lo),
    }
}

fn policies() -> Vec<CrackPolicy> {
    vec![
        CrackPolicy::Standard,
        CrackPolicy::stochastic(),
        CrackPolicy::Stochastic { seed: 1234 },
        CrackPolicy::coarse(),
        CrackPolicy::CoarseGranular { min_piece: 32 },
        // A kernel handed the adaptive marker directly (no advisor in
        // front of it) must fall back to the paper's exact behaviour.
        CrackPolicy::Adaptive,
    ]
}

/// (1) + (2): permutation invariant, recorded-boundary exactness, and
/// scan-equivalent results under every policy.
#[test]
fn head_stays_a_permutation_and_boundaries_stay_exact() {
    let n = 4000;
    let domain = 1000;
    for policy in policies() {
        let mut arr = random_array(n, domain, 7);
        let mut reference: Vec<(Val, u32)> = arr
            .head()
            .iter()
            .copied()
            .zip(arr.tail().iter().copied())
            .collect();
        reference.sort_unstable();
        let mut rng = StdRng::seed_from_u64(99);
        for q in 0..60 {
            let pred = random_pred(&mut rng, domain);
            let span = arr.crack_range_with(&pred, &policy);

            // (1) Permutation: the (head, tail) pair multiset never
            // changes, only the order.
            let mut now: Vec<(Val, u32)> = arr
                .head()
                .iter()
                .copied()
                .zip(arr.tail().iter().copied())
                .collect();
            now.sort_unstable();
            assert_eq!(
                now,
                reference,
                "{} query {q}: head/tail permutation broken",
                policy.label()
            );

            // (2) Every recorded boundary partitions the array exactly.
            arr.check_partitioning();

            // Query-mandated bounds: exact spans must expose both
            // boundaries through the index, *not* marked advisory.
            if span.exact && !pred.is_empty_range() {
                let (lo_k, hi_k) = pred_keys(&pred);
                for k in [lo_k, hi_k].into_iter().flatten() {
                    assert!(
                        arr.index().position_of(k).is_some(),
                        "{} query {q}: query boundary {k:?} missing",
                        policy.label()
                    );
                    assert!(
                        !arr.index().is_advisory(k),
                        "{} query {q}: query boundary {k:?} marked advisory",
                        policy.label()
                    );
                }
            }

            // The span (filtered when inexact) equals a naive scan.
            let mut got: Vec<Val> = arr.head()[span.start..span.end]
                .iter()
                .copied()
                .filter(|&v| span.exact || pred.matches(v))
                .collect();
            got.sort_unstable();
            if span.exact {
                assert!(
                    got.iter().all(|&v| pred.matches(v)),
                    "{} query {q}: exact span contains non-matching value",
                    policy.label()
                );
            }
            let mut expected: Vec<Val> = reference
                .iter()
                .map(|&(v, _)| v)
                .filter(|&v| pred.matches(v))
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "{} query {q}: result set", policy.label());
        }
    }
}

/// (5): the adaptive advisor is a deterministic fold over the predicate
/// stream, and the (pred, effective-policy) log it produces replays a
/// fresh array to a bit-identical state with no advisor present — the
/// contract every tape (MapSet, partial areas, spill/reload) relies on.
#[test]
fn adaptive_advisor_log_replays_bit_identically() {
    let n = 60_000usize;
    let domain = n as Val;
    // A mixed trace: scattered browsing, a sequential sweep (flips the
    // advisor to coarse leaves), then hot-zone panning (the sweep run
    // breaks, but by then the index is dense enough that the boundary
    // cap holds the downgrade).
    let mut preds: Vec<RangePred> = Vec::new();
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..40 {
        preds.push(random_pred(&mut rng, domain));
    }
    let width = domain / 60;
    let mut cursor: Val = 0;
    for _ in 0..60 {
        if cursor + width > domain {
            cursor = 0;
        }
        preds.push(RangePred::open(cursor, cursor + width + 1));
        cursor += width;
    }
    for _ in 0..40 {
        let lo = rng.gen_range(0..domain / 10);
        preds.push(RangePred::open(lo, lo + domain / 100 + 1));
    }

    let run = || {
        let mut arr = random_array(n, domain, 13);
        let mut advisor = PolicyAdvisor::new(CrackPolicy::Adaptive);
        let mut log: Vec<CrackPolicy> = Vec::with_capacity(preds.len());
        for p in &preds {
            let eff = advisor.observe(p, arr.index().len(), arr.head().len());
            assert!(
                !eff.is_adaptive(),
                "the advisor always resolves to a static policy"
            );
            arr.crack_range_with(p, &eff);
            log.push(eff);
        }
        (arr, log, advisor.switches())
    };
    let (a, log_a, switches_a) = run();
    let (b, log_b, switches_b) = run();
    assert_eq!(log_a, log_b, "effective-policy stream is deterministic");
    assert_eq!(switches_a, switches_b);
    assert!(switches_a >= 1, "the mixed trace must flip the policy");
    assert_eq!(a.head(), b.head());
    assert_eq!(a.tail(), b.tail());

    // Tape-style replay: logged policies only, no advisor.
    let mut replayed = random_array(n, domain, 13);
    for (p, eff) in preds.iter().zip(&log_a) {
        replayed.crack_range_with(p, eff);
    }
    assert_eq!(replayed.head(), a.head(), "replayed head diverged");
    assert_eq!(replayed.tail(), a.tail(), "replayed tail diverged");
    assert_eq!(replayed.index().len(), a.index().len());
}

/// (3): under a sequential sweep the stochastic policy's touched-tuple
/// count converges while the standard policy's stays Θ(n) per query.
#[test]
fn sequential_sweep_touched_tuples_sublinear_for_stochastic() {
    let n = 200_000usize;
    let domain = n as Val;
    let queries = 200usize;
    let width = domain / queries as Val;

    let run = |policy: CrackPolicy| -> (u64, u64) {
        let mut arr = random_array(n, domain, 11);
        let mut cursor: Val = 0;
        let mut total = 0u64;
        let mut late = 0u64; // touched during the last half of the sweep
        for q in 0..queries {
            if cursor + width > domain {
                cursor = 0;
            }
            let pred = RangePred::open(cursor, cursor + width + 1);
            cursor += width;
            let before = arr.touched();
            let span = arr.crack_range_with(&pred, &policy);
            // Crack work plus the scan of the returned area — the full
            // per-query data access.
            let delta = (arr.touched() - before) + span.len() as u64;
            total += delta;
            if q >= queries / 2 {
                late += delta;
            }
        }
        (total, late)
    };

    let (std_total, std_late) = run(CrackPolicy::Standard);
    let (sto_total, sto_late) = run(CrackPolicy::stochastic());

    // Standard leaves a huge uncracked tail every query: Θ(n) touched
    // per query, Θ(n·q) cumulative. Stochastic halves pieces along
    // every access path: O(n log n) cumulative.
    assert!(
        std_total > (n as u64) * (queries as u64) / 4,
        "standard sequential should stay near n per query (got {std_total})"
    );
    assert!(
        sto_total * 4 < std_total,
        "stochastic should beat standard by >= 4x on a sequential sweep \
         (stochastic {sto_total} vs standard {std_total})"
    );
    // After the first k queries the per-query cost must be sub-linear:
    // the late-half average is far below n (standard's stays Θ(n)).
    let late_avg = sto_late / (queries as u64 / 2);
    assert!(
        late_avg < (n as u64) / 8,
        "stochastic late-half per-query touched {late_avg} not sub-linear in n={n}"
    );
    assert!(
        std_late / (queries as u64 / 2) > (n as u64) / 8,
        "sanity: standard stays linear per query"
    );
}

/// (4): a skewed drill-down workload shatters a hot region into tiny
/// pieces under the standard policy; the coarse-granular policy stops
/// at its leaf size, capping AVL growth.
#[test]
fn coarse_granular_caps_index_growth_under_skew() {
    let n = 50_000usize;
    let domain = n as Val;
    let min_piece = 512usize;
    let queries = 400usize;

    let run = |policy: CrackPolicy| -> (usize, usize) {
        let mut arr = random_array(n, domain, 23);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..queries {
            // Hot zone: first 2% of the domain, very narrow ranges.
            let lo = rng.gen_range(0..domain / 50);
            let pred = RangePred::open(lo, lo + 3);
            arr.crack_range_with(&pred, &policy);
        }
        arr.check_partitioning();
        (arr.index().len(), arr.index().total_nodes())
    };

    let (std_len, _) = run(CrackPolicy::Standard);
    let (coarse_len, coarse_nodes) = run(CrackPolicy::CoarseGranular { min_piece });

    assert!(
        coarse_len * 4 < std_len,
        "coarse must cap boundary count under skew (coarse {coarse_len} vs standard {std_len})"
    );
    // Structural cap: every recorded boundary split a piece larger than
    // min_piece, and the hot zone holds ~n/50 tuples, so the boundary
    // count is bounded by hot-tuples/min_piece plus a small constant
    // for the zone edges.
    let hot_tuples = n / 50;
    assert!(
        coarse_nodes <= hot_tuples / min_piece * 8 + 16,
        "coarse index grew past its structural cap: {coarse_nodes} nodes"
    );
}
