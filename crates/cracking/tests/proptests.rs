//! Property-based tests of the cracking substrate's invariants.

use crackdb_columnstore::column::Column;
use crackdb_columnstore::types::{Bound, RangePred, Val};
use crackdb_cracking::crack::{crack_in_three, crack_in_two, BoundKind};
use crackdb_cracking::{CrackedArray, CrackerColumn};
use proptest::prelude::*;

fn sorted(mut v: Vec<Val>) -> Vec<Val> {
    v.sort_unstable();
    v
}

proptest! {
    /// crack_in_two partitions correctly and preserves the multiset and
    /// head/tail pairing.
    #[test]
    fn crack_in_two_is_a_partition(
        mut head in prop::collection::vec(-100i64..100, 0..200),
        pivot in -120i64..120,
        le in any::<bool>(),
    ) {
        let kind = if le { BoundKind::Le } else { BoundKind::Lt };
        let orig = head.clone();
        let mut tail: Vec<usize> = (0..head.len()).collect();
        let n = head.len();
        let split = crack_in_two(&mut head, &mut tail, 0, n, pivot, kind);
        for (i, &v) in head.iter().enumerate() {
            prop_assert_eq!(i < split, kind.belongs_left(v, pivot));
            prop_assert_eq!(orig[tail[i]], v, "pairing broken");
        }
        prop_assert_eq!(sorted(head), sorted(orig));
    }

    /// crack_in_three produces the same piece sets as two crack_in_twos.
    #[test]
    fn crack_in_three_equivalent(
        head in prop::collection::vec(-100i64..100, 0..200),
        a in -120i64..120,
        d in 0i64..50,
    ) {
        let b = a + d;
        let mut h3 = head.clone();
        let mut t3 = vec![(); h3.len()];
        let n = h3.len();
        let (s1, s2) = crack_in_three(
            &mut h3, &mut t3, 0, n, (a, BoundKind::Le), (b, BoundKind::Lt),
        );
        let mut h2 = head.clone();
        let mut t2 = vec![(); h2.len()];
        let x1 = crack_in_two(&mut h2, &mut t2, 0, n, a, BoundKind::Le);
        let x2 = crack_in_two(&mut h2, &mut t2, x1, n, b, BoundKind::Lt);
        prop_assert_eq!((s1, s2), (x1, x2));
        prop_assert_eq!(sorted(h3[..s1].to_vec()), sorted(h2[..s1].to_vec()));
        prop_assert_eq!(sorted(h3[s1..s2].to_vec()), sorted(h2[s1..s2].to_vec()));
        prop_assert_eq!(sorted(h3[s2..].to_vec()), sorted(h2[s2..].to_vec()));
    }

    /// Any sequence of crack_range calls keeps the index consistent with
    /// the physical array and answers selections exactly.
    #[test]
    fn crack_range_sequences_are_consistent(
        head in prop::collection::vec(-50i64..50, 1..150),
        queries in prop::collection::vec((-60i64..60, 0i64..40, any::<bool>(), any::<bool>()), 1..12),
    ) {
        let tail: Vec<u32> = (0..head.len() as u32).collect();
        let orig = head.clone();
        let mut arr = CrackedArray::new(head, tail);
        for (lo, width, lo_incl, hi_incl) in queries {
            let pred = RangePred {
                lo: Some(Bound { value: lo, inclusive: lo_incl }),
                hi: Some(Bound { value: lo + width, inclusive: hi_incl }),
            };
            if pred.is_empty_range() {
                continue;
            }
            let (s, e) = arr.crack_range(&pred);
            arr.check_partitioning();
            let (h, _) = arr.view((s, e));
            let got = sorted(h.to_vec());
            let expected = sorted(orig.iter().copied().filter(|&v| pred.matches(v)).collect());
            prop_assert_eq!(got, expected);
        }
        prop_assert_eq!(sorted(arr.head().to_vec()), sorted(orig));
    }

    /// Ripple inserts/deletes interleaved with cracks keep the column
    /// equivalent to a naive multiset.
    #[test]
    fn ripple_updates_preserve_contents(
        base in prop::collection::vec(0i64..40, 1..80),
        ops in prop::collection::vec((0u8..3, 0i64..40, 0i64..20), 1..40),
    ) {
        let col = Column::new(base.clone());
        let mut cracker = CrackerColumn::from_column(&col);
        let mut reference: Vec<(Val, u32)> =
            base.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        let mut next_key = base.len() as u32;
        for (op, v, w) in ops {
            match op {
                0 => {
                    cracker.queue_insert(v, next_key);
                    reference.push((v, next_key));
                    next_key += 1;
                }
                1 => {
                    if let Some(pos) = reference.iter().position(|&(rv, _)| rv == v) {
                        let (rv, rk) = reference.remove(pos);
                        cracker.queue_delete(rv, rk);
                    }
                }
                _ => {
                    let pred = RangePred::closed(v, v + w);
                    let mut got = cracker.select_keys(&pred);
                    got.sort_unstable();
                    let mut expected: Vec<u32> = reference
                        .iter()
                        .filter(|(rv, _)| pred.matches(*rv))
                        .map(|&(_, k)| k)
                        .collect();
                    expected.sort_unstable();
                    prop_assert_eq!(got, expected);
                    cracker.array().check_partitioning();
                }
            }
        }
        cracker.merge_all_pending();
        prop_assert_eq!(cracker.len(), reference.len());
    }
}
