//! Property-based tests of the cracking substrate's invariants, driven
//! by a deterministic seeded PRNG (the workspace builds offline, so no
//! `proptest` dependency).

use crackdb_columnstore::column::Column;
use crackdb_columnstore::types::{Bound, RangePred, Val};
use crackdb_cracking::crack::{crack_in_three, crack_in_two, BoundKind};
use crackdb_cracking::{CrackedArray, CrackerColumn};
use crackdb_rng::{rngs::StdRng, Rng, SeedableRng};

const CASES: u64 = 96;

fn cases(seed: u64, mut f: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15)));
        f(&mut rng);
    }
}

fn vec_of(rng: &mut StdRng, lo: Val, hi: Val, min_len: usize, max_len: usize) -> Vec<Val> {
    let len = rng.gen_range(min_len..max_len);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

fn sorted(mut v: Vec<Val>) -> Vec<Val> {
    v.sort_unstable();
    v
}

/// crack_in_two partitions correctly and preserves the multiset and
/// head/tail pairing.
#[test]
fn crack_in_two_is_a_partition() {
    cases(0x2217, |rng| {
        let mut head = vec_of(rng, -100, 100, 0, 200);
        let pivot = rng.gen_range(-120i64..120);
        let kind = if rng.gen_bool(0.5) {
            BoundKind::Le
        } else {
            BoundKind::Lt
        };
        let orig = head.clone();
        let mut tail: Vec<usize> = (0..head.len()).collect();
        let n = head.len();
        let split = crack_in_two(&mut head, &mut tail, 0, n, pivot, kind);
        for (i, &v) in head.iter().enumerate() {
            assert_eq!(i < split, kind.belongs_left(v, pivot));
            assert_eq!(orig[tail[i]], v, "pairing broken");
        }
        assert_eq!(sorted(head), sorted(orig));
    });
}

/// crack_in_three produces the same piece sets as two crack_in_twos.
#[test]
fn crack_in_three_equivalent() {
    cases(0x3317, |rng| {
        let head = vec_of(rng, -100, 100, 0, 200);
        let a = rng.gen_range(-120i64..120);
        let b = a + rng.gen_range(0i64..50);
        let mut h3 = head.clone();
        let mut t3 = vec![(); h3.len()];
        let n = h3.len();
        let (s1, s2) = crack_in_three(
            &mut h3,
            &mut t3,
            0,
            n,
            (a, BoundKind::Le),
            (b, BoundKind::Lt),
        );
        let mut h2 = head.clone();
        let mut t2 = vec![(); h2.len()];
        let x1 = crack_in_two(&mut h2, &mut t2, 0, n, a, BoundKind::Le);
        let x2 = crack_in_two(&mut h2, &mut t2, x1, n, b, BoundKind::Lt);
        assert_eq!((s1, s2), (x1, x2));
        assert_eq!(sorted(h3[..s1].to_vec()), sorted(h2[..s1].to_vec()));
        assert_eq!(sorted(h3[s1..s2].to_vec()), sorted(h2[s1..s2].to_vec()));
        assert_eq!(sorted(h3[s2..].to_vec()), sorted(h2[s2..].to_vec()));
    });
}

/// Any sequence of crack_range calls keeps the index consistent with the
/// physical array and answers selections exactly.
#[test]
fn crack_range_sequences_are_consistent() {
    cases(0xC4AC2, |rng| {
        let head = vec_of(rng, -50, 50, 1, 150);
        let tail: Vec<u32> = (0..head.len() as u32).collect();
        let orig = head.clone();
        let mut arr = CrackedArray::new(head, tail);
        let nq = rng.gen_range(1usize..12);
        for _ in 0..nq {
            let lo = rng.gen_range(-60i64..60);
            let pred = RangePred {
                lo: Some(Bound {
                    value: lo,
                    inclusive: rng.gen_bool(0.5),
                }),
                hi: Some(Bound {
                    value: lo + rng.gen_range(0i64..40),
                    inclusive: rng.gen_bool(0.5),
                }),
            };
            if pred.is_empty_range() {
                continue;
            }
            let (s, e) = arr.crack_range(&pred);
            arr.check_partitioning();
            let (h, _) = arr.view((s, e));
            let got = sorted(h.to_vec());
            let expected = sorted(orig.iter().copied().filter(|&v| pred.matches(v)).collect());
            assert_eq!(got, expected);
        }
        assert_eq!(sorted(arr.head().to_vec()), sorted(orig));
    });
}

/// Ripple inserts/deletes interleaved with cracks keep the column
/// equivalent to a naive multiset.
#[test]
fn ripple_updates_preserve_contents() {
    cases(0x21991E, |rng| {
        let base = vec_of(rng, 0, 40, 1, 80);
        let col = Column::new(base.clone());
        let mut cracker = CrackerColumn::from_column(&col);
        let mut reference: Vec<(Val, u32)> = base
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut next_key = base.len() as u32;
        let nops = rng.gen_range(1usize..40);
        for _ in 0..nops {
            let op = rng.gen_range(0u32..3);
            let v = rng.gen_range(0i64..40);
            match op {
                0 => {
                    cracker.queue_insert(v, next_key);
                    reference.push((v, next_key));
                    next_key += 1;
                }
                1 => {
                    if let Some(pos) = reference.iter().position(|&(rv, _)| rv == v) {
                        let (rv, rk) = reference.remove(pos);
                        cracker.queue_delete(rv, rk);
                    }
                }
                _ => {
                    let pred = RangePred::closed(v, v + rng.gen_range(0i64..20));
                    let mut got = cracker.select_keys(&pred);
                    got.sort_unstable();
                    let mut expected: Vec<u32> = reference
                        .iter()
                        .filter(|(rv, _)| pred.matches(*rv))
                        .map(|&(_, k)| k)
                        .collect();
                    expected.sort_unstable();
                    assert_eq!(got, expected);
                    cracker.array().check_partitioning();
                }
            }
        }
        cracker.merge_all_pending();
        assert_eq!(cracker.len(), reference.len());
    });
}
