//! Property-based tests of the cracking substrate's invariants, driven
//! by a deterministic seeded PRNG (the workspace builds offline, so no
//! `proptest` dependency).

use crackdb_columnstore::column::Column;
use crackdb_columnstore::types::{Bound, RangePred, Val};
use crackdb_cracking::crack::{crack_in_three, crack_in_two, BoundKind};
use crackdb_cracking::{CrackedArray, CrackerColumn};
use crackdb_rng::{rngs::StdRng, Rng, SeedableRng};

/// Independently verify the structural invariants tying a cracker index
/// to its physical array (deliberately *not* via
/// `CrackedArray::check_partitioning`, which is the code under test's
/// own helper):
///
/// 1. boundary keys are strictly ascending and their positions
///    non-decreasing, every position within `[0, len]`;
/// 2. each boundary partitions the array: values below its position
///    belong to the left piece, values at/after it do not;
/// 3. the AVL lookups agree with the flattened boundary list —
///    `position_of` resolves each live boundary to the recorded
///    position, and `enclosing_piece` of a key between two adjacent
///    boundaries returns exactly those positions.
fn assert_structural_invariants<T: Copy>(arr: &CrackedArray<T>) {
    let n = arr.len();
    let bs = arr.index().boundaries();

    // (1) sorted boundary list, in-range positions.
    for w in bs.windows(2) {
        assert!(w[0].0 < w[1].0, "boundary keys must strictly ascend");
        assert!(w[0].1 <= w[1].1, "boundary positions must not descend");
    }
    for &(_, pos) in &bs {
        assert!(pos <= n, "boundary position {pos} outside array of {n}");
    }

    // (2) every piece internally in-range with respect to its bounds.
    for &((bv, kind), pos) in &bs {
        for (i, &h) in arr.head().iter().enumerate() {
            if i < pos {
                assert!(
                    kind.belongs_left(h, bv),
                    "value {h} at {i} must be left of ({bv},{kind:?})@{pos}"
                );
            } else {
                assert!(
                    !kind.belongs_left(h, bv),
                    "value {h} at {i} must be right of ({bv},{kind:?})@{pos}"
                );
            }
        }
    }

    // (3) AVL lookups consistent with the flattened list.
    for (i, &(key, pos)) in bs.iter().enumerate() {
        assert_eq!(
            arr.index().position_of(key),
            Some(pos),
            "live boundary must resolve through the AVL"
        );
        // A key nestled between boundary i and i+1 sees exactly that
        // piece. BoundKind::Lt sorts before Le on equal values, so
        // probing (key.0, Le) when this boundary is (key.0, Lt) stays
        // inside the right-adjacent piece.
        let next = bs.get(i + 1);
        let probe = (key.0, BoundKind::Le);
        if key.1 == BoundKind::Lt && arr.index().position_of(probe).is_none() {
            let (s, e) = arr.index().enclosing_piece(probe, n);
            assert_eq!(s, pos, "piece after boundary {i} starts at it");
            assert_eq!(
                e,
                next.map_or(n, |&(_, p)| p),
                "piece after boundary {i} ends at the next boundary"
            );
        }
    }
}

const CASES: u64 = 96;

fn cases(seed: u64, mut f: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15)));
        f(&mut rng);
    }
}

fn vec_of(rng: &mut StdRng, lo: Val, hi: Val, min_len: usize, max_len: usize) -> Vec<Val> {
    let len = rng.gen_range(min_len..max_len);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

fn sorted(mut v: Vec<Val>) -> Vec<Val> {
    v.sort_unstable();
    v
}

/// crack_in_two partitions correctly and preserves the multiset and
/// head/tail pairing.
#[test]
fn crack_in_two_is_a_partition() {
    cases(0x2217, |rng| {
        let mut head = vec_of(rng, -100, 100, 0, 200);
        let pivot = rng.gen_range(-120i64..120);
        let kind = if rng.gen_bool(0.5) {
            BoundKind::Le
        } else {
            BoundKind::Lt
        };
        let orig = head.clone();
        let mut tail: Vec<usize> = (0..head.len()).collect();
        let n = head.len();
        let split = crack_in_two(&mut head, &mut tail, 0, n, pivot, kind);
        for (i, &v) in head.iter().enumerate() {
            assert_eq!(i < split, kind.belongs_left(v, pivot));
            assert_eq!(orig[tail[i]], v, "pairing broken");
        }
        assert_eq!(sorted(head), sorted(orig));
    });
}

/// crack_in_three produces the same piece sets as two crack_in_twos.
#[test]
fn crack_in_three_equivalent() {
    cases(0x3317, |rng| {
        let head = vec_of(rng, -100, 100, 0, 200);
        let a = rng.gen_range(-120i64..120);
        let b = a + rng.gen_range(0i64..50);
        let mut h3 = head.clone();
        let mut t3 = vec![(); h3.len()];
        let n = h3.len();
        let (s1, s2) = crack_in_three(
            &mut h3,
            &mut t3,
            0,
            n,
            (a, BoundKind::Le),
            (b, BoundKind::Lt),
        );
        let mut h2 = head.clone();
        let mut t2 = vec![(); h2.len()];
        let x1 = crack_in_two(&mut h2, &mut t2, 0, n, a, BoundKind::Le);
        let x2 = crack_in_two(&mut h2, &mut t2, x1, n, b, BoundKind::Lt);
        assert_eq!((s1, s2), (x1, x2));
        assert_eq!(sorted(h3[..s1].to_vec()), sorted(h2[..s1].to_vec()));
        assert_eq!(sorted(h3[s1..s2].to_vec()), sorted(h2[s1..s2].to_vec()));
        assert_eq!(sorted(h3[s2..].to_vec()), sorted(h2[s2..].to_vec()));
    });
}

/// Any sequence of crack_range calls keeps the index consistent with the
/// physical array and answers selections exactly.
#[test]
fn crack_range_sequences_are_consistent() {
    cases(0xC4AC2, |rng| {
        let head = vec_of(rng, -50, 50, 1, 150);
        let tail: Vec<u32> = (0..head.len() as u32).collect();
        let orig = head.clone();
        let mut arr = CrackedArray::new(head, tail);
        let nq = rng.gen_range(1usize..12);
        for _ in 0..nq {
            let lo = rng.gen_range(-60i64..60);
            let pred = RangePred {
                lo: Some(Bound {
                    value: lo,
                    inclusive: rng.gen_bool(0.5),
                }),
                hi: Some(Bound {
                    value: lo + rng.gen_range(0i64..40),
                    inclusive: rng.gen_bool(0.5),
                }),
            };
            if pred.is_empty_range() {
                continue;
            }
            let (s, e) = arr.crack_range(&pred);
            arr.check_partitioning();
            let (h, _) = arr.view((s, e));
            let got = sorted(h.to_vec());
            let expected = sorted(orig.iter().copied().filter(|&v| pred.matches(v)).collect());
            assert_eq!(got, expected);
        }
        assert_eq!(sorted(arr.head().to_vec()), sorted(orig));
    });
}

/// Structural invariants (piece in-range, sorted boundaries, AVL
/// consistency) hold after *any* random crack sequence — not just the
/// end-to-end answers tested above.
#[test]
fn crack_sequences_preserve_structural_invariants() {
    cases(0x57AB1E, |rng| {
        let head = vec_of(rng, -80, 80, 1, 160);
        let tail: Vec<u32> = (0..head.len() as u32).collect();
        let orig = sorted(head.clone());
        let mut arr = CrackedArray::new(head, tail);
        let nq = rng.gen_range(1usize..16);
        for _ in 0..nq {
            // Mix two-sided, one-sided and point predicates.
            let lo = rng.gen_range(-90i64..90);
            let pred = match rng.gen_range(0u32..4) {
                0 => RangePred::open(lo, lo + rng.gen_range(1i64..50)),
                1 => RangePred::closed(lo, lo + rng.gen_range(0i64..50)),
                2 => RangePred::greater(Bound {
                    value: lo,
                    inclusive: rng.gen_bool(0.5),
                }),
                _ => RangePred::less(Bound {
                    value: lo,
                    inclusive: rng.gen_bool(0.5),
                }),
            };
            if pred.is_empty_range() {
                continue;
            }
            arr.crack_range(&pred);
            assert_structural_invariants(&arr);
        }
        // Cracking permutes, never mutates, the multiset.
        assert_eq!(sorted(arr.head().to_vec()), orig);
    });
}

/// The same structural invariants survive ripple inserts and deletes
/// interleaved with cracks (boundaries shift but stay sorted, pieces
/// stay internally in-range, the AVL stays consistent).
#[test]
fn ripple_updates_preserve_structural_invariants() {
    cases(0x217C7, |rng| {
        let head = vec_of(rng, 0, 50, 1, 100);
        let tail: Vec<u32> = (0..head.len() as u32).collect();
        let mut arr = CrackedArray::new(head, tail);
        let mut next_tag = 1000u32;
        let nops = rng.gen_range(1usize..30);
        for _ in 0..nops {
            match rng.gen_range(0u32..3) {
                0 => {
                    arr.ripple_insert(rng.gen_range(0i64..50), next_tag);
                    next_tag += 1;
                }
                1 => {
                    let v = rng.gen_range(0i64..50);
                    arr.ripple_delete(v, |_| true);
                }
                _ => {
                    let lo = rng.gen_range(0i64..45);
                    let pred = RangePred::closed(lo, lo + rng.gen_range(0i64..15));
                    if !pred.is_empty_range() {
                        arr.crack_range(&pred);
                    }
                }
            }
            assert_structural_invariants(&arr);
        }
    });
}

/// The self-organizing histogram (§3.3) must bracket the true result
/// size: `lower <= actual <= upper` for every estimate, with exactness
/// exactly when both bounds hit existing cracks.
#[test]
fn size_estimates_bracket_the_truth() {
    cases(0xE57, |rng| {
        let head = vec_of(rng, 0, 100, 1, 150);
        let orig = head.clone();
        let tail: Vec<u32> = (0..head.len() as u32).collect();
        let mut arr = CrackedArray::new(head, tail);
        for _ in 0..rng.gen_range(0usize..8) {
            let lo = rng.gen_range(0i64..95);
            let pred = RangePred::open(lo, lo + rng.gen_range(1i64..40));
            if !pred.is_empty_range() {
                arr.crack_range(&pred);
            }
        }
        for _ in 0..10 {
            let lo = rng.gen_range(0i64..95);
            let pred = RangePred::open(lo, lo + rng.gen_range(1i64..40));
            if pred.is_empty_range() {
                continue;
            }
            let est = arr.index().estimate_size(&pred, arr.len(), (0, 100));
            let actual = orig.iter().filter(|&&v| pred.matches(v)).count();
            assert!(
                est.lower <= actual && actual <= est.upper,
                "estimate [{}, {}] must bracket actual {actual}",
                est.lower,
                est.upper
            );
            if est.exact {
                assert_eq!(est.lower, est.upper, "exact estimates have tight bounds");
                assert_eq!(actual, est.lower);
            }
        }
    });
}

/// Ripple inserts/deletes interleaved with cracks keep the column
/// equivalent to a naive multiset.
#[test]
fn ripple_updates_preserve_contents() {
    cases(0x21991E, |rng| {
        let base = vec_of(rng, 0, 40, 1, 80);
        let col = Column::new(base.clone());
        let mut cracker = CrackerColumn::from_column(&col);
        let mut reference: Vec<(Val, u32)> = base
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut next_key = base.len() as u32;
        let nops = rng.gen_range(1usize..40);
        for _ in 0..nops {
            let op = rng.gen_range(0u32..3);
            let v = rng.gen_range(0i64..40);
            match op {
                0 => {
                    cracker.queue_insert(v, next_key);
                    reference.push((v, next_key));
                    next_key += 1;
                }
                1 => {
                    if let Some(pos) = reference.iter().position(|&(rv, _)| rv == v) {
                        let (rv, rk) = reference.remove(pos);
                        cracker.queue_delete(rv, rk);
                    }
                }
                _ => {
                    let pred = RangePred::closed(v, v + rng.gen_range(0i64..20));
                    let mut got = cracker.select_keys(&pred);
                    got.sort_unstable();
                    let mut expected: Vec<u32> = reference
                        .iter()
                        .filter(|(rv, _)| pred.matches(*rv))
                        .map(|&(_, k)| k)
                        .collect();
                    expected.sort_unstable();
                    assert_eq!(got, expected);
                    cracker.array().check_partitioning();
                }
            }
        }
        cracker.merge_all_pending();
        assert_eq!(cracker.len(), reference.len());
    });
}
