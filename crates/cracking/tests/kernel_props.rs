//! Seeded-PRNG equivalence properties: the block crack kernels against
//! the scalar reference.
//!
//! The determinism contract (see `crackdb_cracking::kernel`) promises
//! that both kernels produce **identical split positions** (splits are
//! determined by value counts, which no reordering changes) and
//! **permutation-equivalent piece contents** (same multiset per piece,
//! head/tail pairing preserved). These properties are what make
//! `CRACKDB_KERNEL` safe to flip per process: every differential suite,
//! tape replay and boundary position is kernel-invariant.
//!
//! All trials are driven by a fixed-seed LCG so failures replay.

use crackdb_columnstore::types::Val;
use crackdb_cracking::crack::{
    crack_in_three_block, crack_in_three_scalar, crack_in_two_block, crack_in_two_scalar,
};
use crackdb_cracking::BoundKind;

/// Deterministic 64-bit LCG (MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, m: usize) -> usize {
        (self.next() % m.max(1) as u64) as usize
    }

    fn val(&mut self, m: i64) -> Val {
        (self.next() as i64).rem_euclid(m.max(1))
    }
}

/// Assert the two layouts are permutation-equivalent per piece and that
/// each kernel kept its own head/tail pairing (tails carry the original
/// position of their head value).
fn assert_piece_equiv(
    splits: &[usize],
    orig: &[Val],
    scalar: (&[Val], &[u32]),
    block: (&[Val], &[u32]),
) {
    for w in splits.windows(2) {
        let (x, y) = (w[0], w[1]);
        let mut a = scalar.0[x..y].to_vec();
        let mut b = block.0[x..y].to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "piece [{x}, {y}) multisets differ between kernels");
    }
    for (h, t) in [scalar, block] {
        for (i, (&v, &tl)) in h.iter().zip(t).enumerate() {
            assert_eq!(orig[tl as usize], v, "pairing broken at {i}");
        }
    }
}

#[test]
fn crack_in_two_equivalence_under_random_trials() {
    let mut rng = Lcg(0xC0FFEE);
    for trial in 0..500 {
        // Sizes sweep the scalar-only, partial-block and multi-block
        // regimes; domains sweep heavy-duplicate to near-unique.
        let n = match trial % 5 {
            0 => rng.below(4),           // empty / singleton / tiny
            1 => 64 + rng.below(65),     // around one block
            2 => 128 + rng.below(129),   // around the 2-block threshold
            3 => rng.below(2000),        // general
            _ => 4096 + rng.below(1000), // comfortably blocked
        };
        let domain = [2, 5, 100, 1 << 30][trial % 4];
        let data: Vec<Val> = (0..n).map(|_| rng.val(domain)).collect();
        // Random subrange, sometimes degenerate or full.
        let start = rng.below(n + 1);
        let end = start + rng.below(n - start + 1);
        // Edge pivots (below/above every value) on a cadence, else random.
        let pivot = match trial % 7 {
            0 => -1,
            1 => domain + 1,
            _ => rng.val(domain + 2) - 1,
        };
        let kind = if rng.below(2) == 0 {
            BoundKind::Lt
        } else {
            BoundKind::Le
        };

        let mut h1 = data.clone();
        let mut t1: Vec<u32> = (0..n as u32).collect();
        let mut h2 = data.clone();
        let mut t2 = t1.clone();
        let s1 = crack_in_two_scalar(&mut h1, &mut t1, start, end, pivot, kind);
        let s2 = crack_in_two_block(&mut h2, &mut t2, start, end, pivot, kind);
        assert_eq!(
            s1, s2,
            "trial {trial}: splits differ (n={n} range=[{start},{end}) pivot={pivot} {kind:?})"
        );
        // Outside the subrange both kernels must not touch anything.
        assert_eq!(&h1[..start], &data[..start]);
        assert_eq!(&h2[..start], &data[..start]);
        assert_eq!(&h1[end..], &data[end..]);
        assert_eq!(&h2[end..], &data[end..]);
        // Partition correctness + per-piece permutation equivalence.
        for (h, _) in [(&h1, &t1), (&h2, &t2)] {
            for (i, &v) in h[start..end].iter().enumerate() {
                assert_eq!(
                    kind.belongs_left(v, pivot),
                    start + i < s1,
                    "trial {trial}: misplaced {v}"
                );
            }
        }
        assert_piece_equiv(&[start, s1, end], &data, (&h1, &t1), (&h2, &t2));
    }
}

#[test]
fn crack_in_three_equivalence_under_random_trials() {
    let mut rng = Lcg(0xB10C);
    for trial in 0..300 {
        let n = match trial % 4 {
            0 => rng.below(3),
            1 => 100 + rng.below(100),
            2 => 1000 + rng.below(500),
            _ => 4096 + rng.below(2000),
        };
        let domain = [3, 50, 1000][trial % 3];
        let data: Vec<Val> = (0..n).map(|_| rng.val(domain)).collect();
        let start = rng.below(n + 1);
        let end = start + rng.below(n - start + 1);
        // All four BoundKind combos, edge and crossing pivots included.
        let lo_v = rng.val(domain + 2) - 1;
        let hi_v = lo_v + rng.below(domain as usize / 2 + 1) as Val;
        let combos = [
            (BoundKind::Le, BoundKind::Lt),
            (BoundKind::Lt, BoundKind::Le),
            (BoundKind::Lt, BoundKind::Lt),
            (BoundKind::Le, BoundKind::Le),
        ];
        let (k1, k2) = combos[trial % 4];
        let lo_bound = (lo_v, k1);
        let hi_bound = (hi_v, k2);
        // The kernels require a consistent two-boundary predicate (no
        // value both left of lo and right of hi). Callers guarantee it
        // via strictly ordered boundary keys; `(v, Le)` + `(v, Lt)` is
        // the one equal-value combo that violates it.
        if lo_v == hi_v && (k1, k2) == (BoundKind::Le, BoundKind::Lt) {
            continue;
        }

        let mut h1 = data.clone();
        let mut t1: Vec<u32> = (0..n as u32).collect();
        let mut h2 = data.clone();
        let mut t2 = t1.clone();
        let s1 = crack_in_three_scalar(&mut h1, &mut t1, start, end, lo_bound, hi_bound);
        let s2 = crack_in_three_block(&mut h2, &mut t2, start, end, lo_bound, hi_bound);
        assert_eq!(
            s1, s2,
            "trial {trial}: splits differ (n={n} range=[{start},{end}) \
             lo=({lo_v},{k1:?}) hi=({hi_v},{k2:?}))"
        );
        assert_eq!(&h1[..start], &data[..start]);
        assert_eq!(&h2[..start], &data[..start]);
        assert_eq!(&h1[end..], &data[end..]);
        assert_eq!(&h2[end..], &data[end..]);
        for (h, _) in [(&h1, &t1), (&h2, &t2)] {
            for (i, &v) in h[start..end].iter().enumerate() {
                let pos = start + i;
                let left = k1.belongs_left(v, lo_v);
                let right = !k2.belongs_left(v, hi_v);
                assert_eq!(left, pos < s1.0, "trial {trial}: {v} vs left split");
                assert_eq!(right, pos >= s1.1, "trial {trial}: {v} vs right split");
            }
        }
        assert_piece_equiv(&[start, s1.0, s1.1, end], &data, (&h1, &t1), (&h2, &t2));
    }
}

#[test]
fn crack_in_three_equals_two_sequential_crack_in_twos() {
    // The blocked three-way kernel is *defined* as hi-pass + lo-pass;
    // the scalar Dutch-flag loop must land on the same splits as the
    // classical two-crack decomposition as well.
    let mut rng = Lcg(0x3A3A);
    for _ in 0..100 {
        let n = 200 + rng.below(800);
        let data: Vec<Val> = (0..n).map(|_| rng.val(500)).collect();
        let lo = rng.val(400);
        let hi = lo + rng.val(100);
        let lo_bound = (lo, BoundKind::Le);
        let hi_bound = (hi, BoundKind::Lt);

        let mut h3 = data.clone();
        let mut t3 = vec![(); n];
        let s3 = crack_in_three_scalar(&mut h3, &mut t3, 0, n, lo_bound, hi_bound);

        let mut h2 = data.clone();
        let mut t2 = vec![(); n];
        let b = crack_in_two_scalar(&mut h2, &mut t2, 0, n, hi, BoundKind::Lt);
        let a = crack_in_two_scalar(&mut h2, &mut t2, 0, b, lo, BoundKind::Le);
        assert_eq!(s3, (a, b));
    }
}
