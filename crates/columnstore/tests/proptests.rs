//! Property-based tests of the column-store substrate, driven by a
//! deterministic seeded PRNG (the workspace builds offline, so no
//! `proptest` dependency).

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::ops::join::hash_join;
use crackdb_columnstore::ops::select::{refine, select, union_scan};
use crackdb_columnstore::presorted::PresortedTable;
use crackdb_columnstore::radix::{bits_for_cache, radix_cluster};
use crackdb_columnstore::rowstore::RowTable;
use crackdb_columnstore::types::{Bound, RangePred, RowId};
use crackdb_rng::{rngs::StdRng, Rng, SeedableRng};

const CASES: u64 = 96;

fn cases(seed: u64, mut f: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15)));
        f(&mut rng);
    }
}

fn vec_of(rng: &mut StdRng, lo: i64, hi: i64, min_len: usize, max_len: usize) -> Vec<i64> {
    let len = rng.gen_range(min_len..max_len);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Scan select returns exactly the qualifying, ordered key set.
#[test]
fn select_is_exact_and_ordered() {
    cases(0x5E1EC7, |rng| {
        let vals = vec_of(rng, -50, 50, 0, 200);
        let col = Column::new(vals.clone());
        let lo = rng.gen_range(-60i64..60);
        let pred = RangePred::open(lo, lo + rng.gen_range(0i64..40));
        let keys = select(&col, &pred);
        assert!(keys.windows(2).all(|x| x[0] < x[1]));
        let expected: Vec<RowId> = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| pred.matches(v))
            .map(|(i, _)| i as RowId)
            .collect();
        assert_eq!(keys, expected);
    });
}

/// refine == select-then-intersect; union_scan == select-then-union.
#[test]
fn refine_and_union_match_set_semantics() {
    cases(0x2EF1E, |rng| {
        let a = vec_of(rng, 0, 30, 1, 150);
        let b = vec_of(rng, 0, 30, 1, 150);
        let n = a.len().min(b.len());
        let ca = Column::new(a[..n].to_vec());
        let cb = Column::new(b[..n].to_vec());
        let (l1, w1) = (rng.gen_range(0i64..30), rng.gen_range(1i64..15));
        let (l2, w2) = (rng.gen_range(0i64..30), rng.gen_range(1i64..15));
        let pa = RangePred::open(l1, l1 + w1);
        let pb = RangePred::open(l2, l2 + w2);
        let ka = select(&ca, &pa);
        let both = refine(&cb, &ka, &pb);
        let expected_and: Vec<RowId> = (0..n as RowId)
            .filter(|&k| pa.matches(ca.get(k)) && pb.matches(cb.get(k)))
            .collect();
        assert_eq!(both, expected_and);
        let either = union_scan(&cb, &ka, &pb);
        let expected_or: Vec<RowId> = (0..n as RowId)
            .filter(|&k| pa.matches(ca.get(k)) || pb.matches(cb.get(k)))
            .collect();
        assert_eq!(either, expected_or);
    });
}

/// Presorted copies answer range selections exactly like scans.
#[test]
fn presorted_equals_scan() {
    cases(0x92E5027, |rng| {
        let a = vec_of(rng, -40, 40, 1, 150);
        let b: Vec<i64> = (0..a.len() as i64).collect();
        let mut t = Table::new();
        t.add_column("a", Column::new(a.clone()));
        t.add_column("b", Column::new(b));
        let p = PresortedTable::build(&t, 0);
        let lo = rng.gen_range(-50i64..50);
        let pred = RangePred {
            lo: Some(Bound {
                value: lo,
                inclusive: rng.gen_bool(0.5),
            }),
            hi: Some(Bound {
                value: lo + rng.gen_range(0i64..30),
                inclusive: rng.gen_bool(0.5),
            }),
        };
        let range = p.select_range(&pred);
        let mut got: Vec<i64> = p.project(1, range).to_vec();
        got.sort_unstable();
        let mut expected: Vec<i64> = select(t.column(0), &pred)
            .into_iter()
            .map(|k| t.column(1).get(k))
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

/// Radix clustering is a permutation that groups keys by cluster.
#[test]
fn radix_cluster_properties() {
    cases(0x24D1, |rng| {
        let len = rng.gen_range(0usize..300);
        let keys: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..1024)).collect();
        let bits = rng.gen_range(0u32..6);
        let out = radix_cluster(&keys, 1024, bits);
        let mut a = keys.clone();
        let mut b = out.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "must be a permutation");
        // Cluster ids must be non-decreasing along the output.
        let shift = 10u32.saturating_sub(bits);
        let ids: Vec<u32> = out.iter().map(|&k| k >> shift).collect();
        assert!(ids.windows(2).all(|w| w[0] <= w[1]));
        assert!(bits_for_cache(1024, 1 << shift) <= 20);
    });
}

/// Hash join equals the nested-loop definition.
#[test]
fn hash_join_equals_nested_loop() {
    cases(0x704A51, |rng| {
        let nl = rng.gen_range(0usize..60);
        let nr = rng.gen_range(0usize..60);
        let l: Vec<(u32, i64)> = (0..nl)
            .map(|_| (rng.gen_range(0u32..50), rng.gen_range(-5i64..5)))
            .collect();
        let r: Vec<(u32, i64)> = (0..nr)
            .map(|_| (rng.gen_range(100u32..150), rng.gen_range(-5i64..5)))
            .collect();
        let mut got = hash_join(&l, &r);
        got.sort_unstable();
        let mut expected = Vec::new();
        for &(lk, lv) in &l {
            for &(rk, rv) in &r {
                if lv == rv {
                    expected.push((lk, rk));
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

/// The row-store scan agrees with the column-store plan.
#[test]
fn rowstore_equals_columnstore() {
    cases(0x2057, |rng| {
        let a = vec_of(rng, 0, 40, 1, 120);
        let b: Vec<i64> = a.iter().map(|v| v * 3 % 40).collect();
        let mut t = Table::new();
        t.add_column("a", Column::new(a));
        t.add_column("b", Column::new(b));
        let rt = RowTable::from_table(&t);
        let (l1, w1) = (rng.gen_range(0i64..40), rng.gen_range(1i64..20));
        let (l2, w2) = (rng.gen_range(0i64..40), rng.gen_range(1i64..20));
        let pa = RangePred::open(l1, l1 + w1);
        let pb = RangePred::open(l2, l2 + w2);
        let row_hits = rt.scan(&[(0, pa), (1, pb)]);
        let col_hits = refine(t.column(1), &select(t.column(0), &pa), &pb);
        let col_hits: Vec<usize> = col_hits.into_iter().map(|k| k as usize).collect();
        assert_eq!(row_hits, col_hits);
    });
}
