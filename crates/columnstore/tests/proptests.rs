//! Property-based tests of the column-store substrate.

use crackdb_columnstore::column::{Column, Table};
use crackdb_columnstore::ops::join::hash_join;
use crackdb_columnstore::ops::select::{refine, select, union_scan};
use crackdb_columnstore::presorted::PresortedTable;
use crackdb_columnstore::radix::{bits_for_cache, radix_cluster};
use crackdb_columnstore::rowstore::RowTable;
use crackdb_columnstore::types::{Bound, RangePred, RowId};
use proptest::prelude::*;

proptest! {
    /// Scan select returns exactly the qualifying, ordered key set.
    #[test]
    fn select_is_exact_and_ordered(
        vals in prop::collection::vec(-50i64..50, 0..200),
        lo in -60i64..60,
        w in 0i64..40,
    ) {
        let col = Column::new(vals.clone());
        let pred = RangePred::open(lo, lo + w);
        let keys = select(&col, &pred);
        prop_assert!(keys.windows(2).all(|x| x[0] < x[1]));
        let expected: Vec<RowId> = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| pred.matches(v))
            .map(|(i, _)| i as RowId)
            .collect();
        prop_assert_eq!(keys, expected);
    }

    /// refine == select-then-intersect; union_scan == select-then-union.
    #[test]
    fn refine_and_union_match_set_semantics(
        a in prop::collection::vec(0i64..30, 1..150),
        b in prop::collection::vec(0i64..30, 1..150),
        p1 in (0i64..30, 1i64..15),
        p2 in (0i64..30, 1i64..15),
    ) {
        let n = a.len().min(b.len());
        let ca = Column::new(a[..n].to_vec());
        let cb = Column::new(b[..n].to_vec());
        let pa = RangePred::open(p1.0, p1.0 + p1.1);
        let pb = RangePred::open(p2.0, p2.0 + p2.1);
        let ka = select(&ca, &pa);
        let both = refine(&cb, &ka, &pb);
        let expected_and: Vec<RowId> = (0..n as RowId)
            .filter(|&k| pa.matches(ca.get(k)) && pb.matches(cb.get(k)))
            .collect();
        prop_assert_eq!(both, expected_and);
        let either = union_scan(&cb, &ka, &pb);
        let expected_or: Vec<RowId> = (0..n as RowId)
            .filter(|&k| pa.matches(ca.get(k)) || pb.matches(cb.get(k)))
            .collect();
        prop_assert_eq!(either, expected_or);
    }

    /// Presorted copies answer range selections exactly like scans.
    #[test]
    fn presorted_equals_scan(
        a in prop::collection::vec(-40i64..40, 1..150),
        lo in -50i64..50,
        w in 0i64..30,
        lo_incl in any::<bool>(),
        hi_incl in any::<bool>(),
    ) {
        let b: Vec<i64> = (0..a.len() as i64).collect();
        let mut t = Table::new();
        t.add_column("a", Column::new(a.clone()));
        t.add_column("b", Column::new(b));
        let p = PresortedTable::build(&t, 0);
        let pred = RangePred {
            lo: Some(Bound { value: lo, inclusive: lo_incl }),
            hi: Some(Bound { value: lo + w, inclusive: hi_incl }),
        };
        let range = p.select_range(&pred);
        let mut got: Vec<i64> = p.project(1, range).to_vec();
        got.sort_unstable();
        let mut expected: Vec<i64> = select(t.column(0), &pred)
            .into_iter()
            .map(|k| t.column(1).get(k))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Radix clustering is a permutation that groups keys by cluster.
    #[test]
    fn radix_cluster_properties(
        keys in prop::collection::vec(0u32..1024, 0..300),
        bits in 0u32..6,
    ) {
        let out = radix_cluster(&keys, 1024, bits);
        let mut a = keys.clone();
        let mut b = out.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "must be a permutation");
        // Cluster ids must be non-decreasing along the output.
        let shift = 10u32.saturating_sub(bits);
        let ids: Vec<u32> = out.iter().map(|&k| k >> shift).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(bits_for_cache(1024, 1 << shift) <= 20);
    }

    /// Hash join equals the nested-loop definition.
    #[test]
    fn hash_join_equals_nested_loop(
        l in prop::collection::vec((0u32..50, -5i64..5), 0..60),
        r in prop::collection::vec((100u32..150, -5i64..5), 0..60),
    ) {
        let mut got = hash_join(&l, &r);
        got.sort_unstable();
        let mut expected = Vec::new();
        for &(lk, lv) in &l {
            for &(rk, rv) in &r {
                if lv == rv {
                    expected.push((lk, rk));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// The row-store scan agrees with the column-store plan.
    #[test]
    fn rowstore_equals_columnstore(
        a in prop::collection::vec(0i64..40, 1..120),
        p1 in (0i64..40, 1i64..20),
        p2 in (0i64..40, 1i64..20),
    ) {
        let b: Vec<i64> = a.iter().map(|v| v * 3 % 40).collect();
        let mut t = Table::new();
        t.add_column("a", Column::new(a));
        t.add_column("b", Column::new(b));
        let rt = RowTable::from_table(&t);
        let pa = RangePred::open(p1.0, p1.0 + p1.1);
        let pb = RangePred::open(p2.0, p2.0 + p2.1);
        let row_hits = rt.scan(&[(0, pa), (1, pb)]);
        let col_hits = refine(t.column(1), &select(t.column(0), &pa), &pb);
        let col_hits: Vec<usize> = col_hits.into_iter().map(|k| k as usize).collect();
        prop_assert_eq!(row_hits, col_hits);
    }
}
