//! The workspace lock idiom.
//!
//! `.lock().unwrap()` escalates one panicking lock holder into a
//! process-wide cascade: every later locker dies on `PoisonError`,
//! turning a single failed query into unrelated failures across
//! threads (and in tests, a wall of red that hides the real
//! assertion). Every mutex in this workspace protects state that a
//! mid-section panic cannot leave semantically broken — caches,
//! registries, bounded sample rings, file tables — so the correct
//! response to poison is to take the guard and keep serving.
//!
//! This helper is the one sanctioned way to lock: `crackdb-lint` L005
//! rejects `.lock().unwrap()` / `.lock().expect(…)` anywhere in the
//! workspace, and clippy's `disallowed-methods` flags raw
//! `Mutex::lock` calls in-editor. A new mutex whose invariants could
//! actually break mid-section must not use this helper — it should
//! hold a state machine that can represent "broken" explicitly
//! instead of relying on poisoning.

use std::sync::{Mutex, MutexGuard};

/// Lock `m`, recovering the guard if a panicking holder poisoned it.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The one place raw `lock` is allowed; see the module docs.
    #[allow(clippy::disallowed_methods)]
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_poisoned_guard() {
        let m = Mutex::new(7);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = lock_unpoisoned(&m);
            panic!("poison the mutex");
        }));
        assert!(caught.is_err());
        assert!(m.is_poisoned(), "precondition: the mutex is poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7, "the guard is still usable");
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }
}
