#![warn(missing_docs)]
//! # crackdb-columnstore
//!
//! A self-contained, MonetDB-style column-store substrate: the storage
//! model and physical algebra that *"Self-organizing Tuple Reconstruction
//! in Column-stores"* (Idreos, Kersten, Manegold; SIGMOD 2009) builds on
//! and benchmarks against.
//!
//! The crate provides:
//!
//! * the BAT storage model ([`column::Column`], [`column::Table`]) with
//!   virtual dense keys and tuple-order alignment across base columns;
//! * the two-column physical algebra ([`ops`]): order-preserving range
//!   [`ops::select`], positional [`ops::reconstruct`], hash
//!   [`ops::join`], non-order-preserving [`ops::group`] and
//!   [`ops::sort`] operators;
//! * the **presorted** baseline ([`presorted::PresortedTable`]) — the
//!   paper's "ultimate physical design" of per-attribute sorted copies;
//! * a **row-store** baseline ([`rowstore`]) standing in for MySQL in the
//!   TPC-H experiments;
//! * cache-conscious [`radix`] clustering of unordered intermediates
//!   (Exp3's reordering strategies);
//! * the segmented disk tier ([`storage::SegmentedColumn`]): base columns
//!   as fixed-size-segment files with checksums and a bounded resident
//!   cache, so tables larger than RAM load on demand;
//! * row-wise [`shard`] partitioning helpers ([`shard::ShardCuts`],
//!   [`shard::partition_table`]) — the arithmetic behind the horizontal
//!   sharding layer (`crackdb-engine`'s `ShardedEngine`).
//!
//! Everything here is deliberately simple and allocation-transparent: the
//! experiments measure *access patterns* (sequential vs random positional
//! lookups), and this substrate reproduces exactly those patterns.

pub mod column;
pub mod ops;
pub mod presorted;
pub mod radix;
pub mod rowstore;
pub mod shard;
pub mod storage;
pub mod sync;
pub mod types;

pub use column::{Column, Table};
pub use presorted::PresortedTable;
pub use rowstore::{PresortedRowTable, RowTable};
pub use shard::{partition_table, ShardCuts};
pub use storage::{SegmentWriter, SegmentedColumn, StorageError};
pub use sync::lock_unpoisoned;
pub use types::{AggFunc, AggResult, Bound, RangePred, RowId, Val};
