//! Cache-friendly radix-clustering of unordered intermediates (paper Exp3,
//! after Manegold et al., "Cache-Conscious Radix-Decluster Projections").
//!
//! Selection cracking produces selection results whose tuple keys are out
//! of insertion order, so reconstructing from base columns random-accesses
//! the whole column. One remedy the paper evaluates is to *reorder* the
//! intermediate first: either fully sort it by key (then reconstruct
//! sequentially) or radix-cluster it — partition keys by their high bits
//! into cache-sized clusters so each cluster's reconstruction touches only
//! a cache-resident region of the base column.

use crate::column::Column;
use crate::types::{RowId, Val};

/// Partition `keys` into `2^bits` clusters by their top bits (relative to
/// the key domain `[0, n)`). Within a cluster, original order is kept.
/// Returns the concatenated clustered key vector.
pub fn radix_cluster(keys: &[RowId], n: usize, bits: u32) -> Vec<RowId> {
    if keys.is_empty() || bits == 0 {
        return keys.to_vec();
    }
    let clusters = 1usize << bits;
    // Shift that maps a key in [0, n) to its cluster id.
    let domain_bits = usize::BITS - (n.max(1) - 1).leading_zeros();
    let shift = domain_bits.saturating_sub(bits);

    let mut counts = vec![0usize; clusters];
    for &k in keys {
        counts[((k as usize) >> shift).min(clusters - 1)] += 1;
    }
    let mut offsets = vec![0usize; clusters];
    let mut acc = 0;
    for (o, c) in offsets.iter_mut().zip(&counts) {
        *o = acc;
        acc += c;
    }
    let mut out = vec![0 as RowId; keys.len()];
    for &k in keys {
        let c = ((k as usize) >> shift).min(clusters - 1);
        out[offsets[c]] = k;
        offsets[c] += 1;
    }
    out
}

/// Choose a radix so that each cluster of the base column roughly fits a
/// target cache budget of `cache_vals` values.
pub fn bits_for_cache(n: usize, cache_vals: usize) -> u32 {
    let mut bits = 0u32;
    let mut cluster_span = n;
    while cluster_span > cache_vals.max(1) && bits < 20 {
        bits += 1;
        cluster_span /= 2;
    }
    bits
}

/// Reconstruct `col` at `keys` after radix-clustering them: the returned
/// values are in clustered order (not the original key order), which is
/// fine for order-insensitive consumers such as aggregates.
pub fn clustered_reconstruct(col: &Column, keys: &[RowId], bits: u32) -> Vec<Val> {
    let clustered = radix_cluster(keys, col.len(), bits);
    let vals = col.values();
    clustered.iter().map(|&k| vals[k as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_partitions_by_high_bits() {
        // Domain [0, 16), 1 bit => clusters [0,8) and [8,16).
        let keys = vec![9, 1, 15, 0, 8, 7];
        let out = radix_cluster(&keys, 16, 1);
        assert_eq!(out, vec![1, 0, 7, 9, 15, 8]);
    }

    #[test]
    fn clustering_preserves_multiset() {
        let keys = vec![5, 3, 9, 14, 2, 11, 7];
        let mut out = radix_cluster(&keys, 16, 2);
        let mut orig = keys.clone();
        out.sort_unstable();
        orig.sort_unstable();
        assert_eq!(out, orig);
    }

    #[test]
    fn zero_bits_is_identity() {
        let keys = vec![3, 1, 2];
        assert_eq!(radix_cluster(&keys, 4, 0), keys);
    }

    #[test]
    fn bits_for_cache_sizes() {
        assert_eq!(bits_for_cache(1 << 20, 1 << 20), 0);
        assert_eq!(bits_for_cache(1 << 20, 1 << 18), 2);
        assert!(bits_for_cache(usize::MAX, 1) <= 20);
    }

    #[test]
    fn clustered_reconstruct_returns_all_values() {
        let col = Column::new((0..16).map(|i| i * 10).collect());
        let keys = vec![9, 1, 15, 0];
        let mut vals = clustered_reconstruct(&col, &keys, 1);
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 10, 90, 150]);
    }
}
