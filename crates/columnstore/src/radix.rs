//! Cache-friendly radix-clustering of unordered intermediates (paper Exp3,
//! after Manegold et al., "Cache-Conscious Radix-Decluster Projections").
//!
//! Selection cracking produces selection results whose tuple keys are out
//! of insertion order, so reconstructing from base columns random-accesses
//! the whole column. One remedy the paper evaluates is to *reorder* the
//! intermediate first: either fully sort it by key (then reconstruct
//! sequentially) or radix-cluster it — partition keys by their high bits
//! into cache-sized clusters so each cluster's reconstruction touches only
//! a cache-resident region of the base column.

use crate::column::Column;
use crate::types::{RowId, Val};

/// Partition `keys` into `2^bits` clusters by their top bits (relative to
/// the key domain `[0, n)`). Within a cluster, original order is kept.
/// Returns the concatenated clustered key vector.
///
/// Degenerate inputs are hardened: zero/one keys, a zero/one-value
/// domain, and `bits = 0` are identity; `bits >= domain_bits` is capped
/// at the domain width (and at 20 bits overall, matching
/// [`bits_for_cache`]) so a wild `bits` cannot allocate `2^bits`
/// counters for clusters that can never hold more than one key.
pub fn radix_cluster(keys: &[RowId], n: usize, bits: u32) -> Vec<RowId> {
    // Shift that maps a key in [0, n) to its cluster id.
    let domain_bits = usize::BITS - (n.max(1) - 1).leading_zeros();
    let bits = bits.min(domain_bits).min(20);
    if keys.len() <= 1 || bits == 0 {
        return keys.to_vec();
    }
    let clusters = 1usize << bits;
    let shift = domain_bits - bits;

    let mut counts = vec![0usize; clusters];
    for &k in keys {
        counts[((k as usize) >> shift).min(clusters - 1)] += 1;
    }
    let mut offsets = vec![0usize; clusters];
    let mut acc = 0;
    for (o, c) in offsets.iter_mut().zip(&counts) {
        *o = acc;
        acc += c;
    }
    let mut out = vec![0 as RowId; keys.len()];
    for &k in keys {
        let c = ((k as usize) >> shift).min(clusters - 1);
        out[offsets[c]] = k;
        offsets[c] += 1;
    }
    out
}

/// Choose a radix so that each cluster of the base column roughly fits a
/// target cache budget of `cache_vals` values.
pub fn bits_for_cache(n: usize, cache_vals: usize) -> u32 {
    let mut bits = 0u32;
    let mut cluster_span = n;
    while cluster_span > cache_vals.max(1) && bits < 20 {
        bits += 1;
        cluster_span /= 2;
    }
    bits
}

/// Counting-partition `head[..]` (and `tail` alongside) into `buckets`
/// equal-width value ranges over the closed value domain `[min, max]`,
/// out of place through a scratch buffer, copying the clustered layout
/// back. Returns the `buckets + 1` bucket offsets (offsets[0] = 0,
/// offsets[buckets] = n).
///
/// This is the value-domain twin of [`radix_cluster`] (which buckets by
/// key bits) and the engine of the crack prepartition fast path: the
/// first crack of a huge uncracked piece pays one cache-friendly
/// counting pass here instead of many half-array crack-in-two passes,
/// and every bucket offset becomes an advisory cracker boundary at the
/// bucket's lower bound `min + ceil(b * range / buckets)`.
///
/// Bucket membership is monotone in the value — `bucket_of(v) < b` iff
/// `v < bucket_lower_bound(b)` — so each offset is a *valid*
/// `BoundKind::Lt` crack boundary. All range arithmetic runs in `i128`:
/// `max - min + 1` overflows `i64` for full-domain columns.
pub fn cluster_by_value<T: Copy>(
    head: &mut [Val],
    tail: &mut [T],
    buckets: usize,
    min: Val,
    max: Val,
) -> Vec<usize> {
    let n = head.len();
    debug_assert_eq!(n, tail.len());
    debug_assert!(min <= max);
    let buckets = buckets.max(1);
    let range = max as i128 - min as i128 + 1;
    let bucket_of = |v: Val| -> usize {
        debug_assert!(v >= min && v <= max);
        (((v as i128 - min as i128) * buckets as i128) / range) as usize
    };

    let mut counts = vec![0usize; buckets];
    for &v in head.iter() {
        counts[bucket_of(v)] += 1;
    }
    let mut offsets = vec![0usize; buckets + 1];
    for b in 0..buckets {
        offsets[b + 1] = offsets[b] + counts[b];
    }
    // Scatter through scratch: every slot is written exactly once (the
    // cursors sweep each bucket's span), so seeding the tail scratch
    // with a clone is only to satisfy initialization — no stale value
    // survives the pass.
    let mut cursors = offsets[..buckets].to_vec();
    let mut h2 = vec![0 as Val; n];
    let mut t2 = tail.to_vec();
    for i in 0..n {
        let b = bucket_of(head[i]);
        h2[cursors[b]] = head[i];
        t2[cursors[b]] = tail[i];
        cursors[b] += 1;
    }
    head.copy_from_slice(&h2);
    tail.copy_from_slice(&t2);
    offsets
}

/// The lower value bound of bucket `b` under [`cluster_by_value`]'s
/// bucketing: the smallest `v` with `bucket_of(v) >= b`. Bucket `b`'s
/// span is exactly the values in `[bound(b), bound(b + 1))`, so
/// `(bound(b), Lt)` is the crack boundary at `offsets[b]`.
pub fn value_bucket_bound(b: usize, buckets: usize, min: Val, max: Val) -> Val {
    debug_assert!(min <= max && buckets >= 1 && b <= buckets);
    let range = max as i128 - min as i128 + 1;
    // ceil(b * range / buckets): first value whose product reaches b.
    let offset = (b as i128 * range + buckets as i128 - 1) / buckets as i128;
    (min as i128 + offset.min(range)) as Val
}

/// Reconstruct `col` at `keys` after radix-clustering them: the returned
/// values are in clustered order (not the original key order), which is
/// fine for order-insensitive consumers such as aggregates.
pub fn clustered_reconstruct(col: &Column, keys: &[RowId], bits: u32) -> Vec<Val> {
    let clustered = radix_cluster(keys, col.len(), bits);
    let vals = col.values();
    clustered.iter().map(|&k| vals[k as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_partitions_by_high_bits() {
        // Domain [0, 16), 1 bit => clusters [0,8) and [8,16).
        let keys = vec![9, 1, 15, 0, 8, 7];
        let out = radix_cluster(&keys, 16, 1);
        assert_eq!(out, vec![1, 0, 7, 9, 15, 8]);
    }

    #[test]
    fn clustering_preserves_multiset() {
        let keys = vec![5, 3, 9, 14, 2, 11, 7];
        let mut out = radix_cluster(&keys, 16, 2);
        let mut orig = keys.clone();
        out.sort_unstable();
        orig.sort_unstable();
        assert_eq!(out, orig);
    }

    #[test]
    fn zero_bits_is_identity() {
        let keys = vec![3, 1, 2];
        assert_eq!(radix_cluster(&keys, 4, 0), keys);
    }

    #[test]
    fn bits_for_cache_sizes() {
        assert_eq!(bits_for_cache(1 << 20, 1 << 20), 0);
        assert_eq!(bits_for_cache(1 << 20, 1 << 18), 2);
        assert!(bits_for_cache(usize::MAX, 1) <= 20);
    }

    #[test]
    fn degenerate_inputs_are_identity() {
        // Zero and one keys.
        assert_eq!(radix_cluster(&[], 16, 3), Vec::<RowId>::new());
        assert_eq!(radix_cluster(&[7], 16, 3), vec![7]);
        // Zero/one-value domains: domain_bits = 0, nothing to split on.
        assert_eq!(radix_cluster(&[0, 0, 0], 0, 4), vec![0, 0, 0]);
        assert_eq!(radix_cluster(&[0, 0], 1, 4), vec![0, 0]);
    }

    #[test]
    fn oversized_bits_are_capped_at_domain_width() {
        // Domain [0, 16) is 4 bits wide; bits = 64 must not try to
        // allocate 2^64 counters — it clusters at 4 bits, i.e. sorts.
        let keys = vec![9, 1, 15, 0, 8, 7];
        let out = radix_cluster(&keys, 16, 64);
        assert_eq!(out, vec![0, 1, 7, 8, 9, 15]);
        // bits exactly at the domain width behaves the same.
        assert_eq!(radix_cluster(&keys, 16, 4), out);
    }

    #[test]
    fn cluster_by_value_partitions_and_aligns() {
        let mut head: Vec<Val> = vec![12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16];
        let mut tail: Vec<RowId> = (0..head.len() as RowId).collect();
        let orig = head.clone();
        let offsets = cluster_by_value(&mut head, &mut tail, 4, 1, 28);
        assert_eq!(offsets.len(), 5);
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[4], head.len());
        for b in 0..4 {
            let lo = value_bucket_bound(b, 4, 1, 28);
            let hi = value_bucket_bound(b + 1, 4, 1, 28);
            for &v in &head[offsets[b]..offsets[b + 1]] {
                assert!(v >= lo && v < hi, "{v} outside bucket {b} [{lo}, {hi})");
            }
        }
        // Tails moved with heads, and the multiset is preserved.
        for (i, &t) in tail.iter().enumerate() {
            assert_eq!(orig[t as usize], head[i]);
        }
        let mut sorted = head.clone();
        sorted.sort_unstable();
        let mut orig_sorted = orig;
        orig_sorted.sort_unstable();
        assert_eq!(sorted, orig_sorted);
    }

    #[test]
    fn cluster_by_value_extreme_domain_does_not_overflow() {
        // Full i64 domain: range = 2^64 overflows i64 but not i128.
        let mut head: Vec<Val> = vec![Val::MIN, -1, 0, 1, Val::MAX];
        let mut tail = vec![(); head.len()];
        let offsets = cluster_by_value(&mut head, &mut tail, 2, Val::MIN, Val::MAX);
        let mid = value_bucket_bound(1, 2, Val::MIN, Val::MAX);
        assert_eq!(mid, 0);
        assert_eq!(head[..offsets[1]], [Val::MIN, -1]);
        assert_eq!(head[offsets[1]..], [0, 1, Val::MAX]);
    }

    #[test]
    fn value_bucket_bounds_bracket_the_domain() {
        assert_eq!(value_bucket_bound(0, 8, 10, 89), 10);
        assert_eq!(value_bucket_bound(8, 8, 10, 89), 90);
        // Monotone, and every value lands in exactly one bucket.
        for b in 0..8 {
            assert!(value_bucket_bound(b, 8, 10, 89) < value_bucket_bound(b + 1, 8, 10, 89));
        }
    }

    #[test]
    fn clustered_reconstruct_returns_all_values() {
        let col = Column::new((0..16).map(|i| i * 10).collect());
        let keys = vec![9, 1, 15, 0];
        let mut vals = clustered_reconstruct(&col, &keys, 1);
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 10, 90, 150]);
    }
}
