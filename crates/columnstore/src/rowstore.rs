//! A minimal row-store executor, standing in for the paper's MySQL
//! baseline in the TPC-H experiments (§5).
//!
//! Tuples are stored contiguously row-by-row and processed
//! tuple-at-a-time: a scan evaluates all predicates against a row in one
//! pass and immediately has every attribute at hand — no tuple
//! reconstruction at all, at the price of always reading full rows.

use crate::column::Table;
use crate::types::{RangePred, RowId, Val};

/// Row-major table: `rows[i]` holds all attribute values of tuple `i`.
#[derive(Debug, Clone)]
pub struct RowTable {
    arity: usize,
    rows: Vec<Vec<Val>>,
}

impl RowTable {
    /// Convert a column-store table into row-major layout.
    pub fn from_table(table: &Table) -> Self {
        let arity = table.num_columns();
        let rows = (0..table.num_rows())
            .map(|i| table.row(i as RowId))
            .collect();
        RowTable { arity, rows }
    }

    /// Number of tuples.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// One tuple.
    pub fn row(&self, i: usize) -> &[Val] {
        &self.rows[i]
    }

    /// Tuple-at-a-time scan: returns row indices whose attributes satisfy
    /// every `(column, predicate)` pair.
    pub fn scan(&self, preds: &[(usize, RangePred)]) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, row) in self.rows.iter().enumerate() {
            if preds.iter().all(|(c, p)| p.matches(row[*c])) {
                out.push(i);
            }
        }
        out
    }

    /// Scan returning projected attribute values directly (the row-store
    /// advantage: projection is free once the row is in cache).
    pub fn scan_project(&self, preds: &[(usize, RangePred)], proj: &[usize]) -> Vec<Vec<Val>> {
        let mut out = Vec::new();
        for row in &self.rows {
            if preds.iter().all(|(c, p)| p.matches(row[*c])) {
                out.push(proj.iter().map(|&c| row[c]).collect());
            }
        }
        out
    }
}

/// A row table kept sorted on one attribute: binary-search selection plus
/// contiguous row reads — the "MySQL presorted" configuration.
#[derive(Debug, Clone)]
pub struct PresortedRowTable {
    sort_col: usize,
    inner: RowTable,
}

impl PresortedRowTable {
    /// Build from a column table, sorting rows on `sort_col`.
    pub fn build(table: &Table, sort_col: usize) -> Self {
        let mut rt = RowTable::from_table(table);
        rt.rows.sort_by_key(|r| r[sort_col]);
        PresortedRowTable {
            sort_col,
            inner: rt,
        }
    }

    /// Contiguous row range satisfying a predicate on the sort attribute.
    pub fn select_range(&self, pred: &RangePred) -> (usize, usize) {
        let rows = &self.inner.rows;
        let sc = self.sort_col;
        let start = match pred.lo {
            None => 0,
            Some(b) => {
                if b.inclusive {
                    rows.partition_point(|r| r[sc] < b.value)
                } else {
                    rows.partition_point(|r| r[sc] <= b.value)
                }
            }
        };
        let end = match pred.hi {
            None => rows.len(),
            Some(b) => {
                if b.inclusive {
                    rows.partition_point(|r| r[sc] <= b.value)
                } else {
                    rows.partition_point(|r| r[sc] < b.value)
                }
            }
        };
        (start, end.max(start))
    }

    /// Rows in a selected range, with residual predicates applied
    /// tuple-at-a-time and requested attributes projected.
    pub fn project_range(
        &self,
        range: (usize, usize),
        residual: &[(usize, RangePred)],
        proj: &[usize],
    ) -> Vec<Vec<Val>> {
        self.inner.rows[range.0..range.1]
            .iter()
            .filter(|r| residual.iter().all(|(c, p)| p.matches(r[*c])))
            .map(|r| proj.iter().map(|&c| r[c]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, Table};

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![3, 1, 2]));
        t.add_column("b", Column::new(vec![30, 10, 20]));
        t
    }

    #[test]
    fn roundtrip_layout() {
        let rt = RowTable::from_table(&table());
        assert_eq!(rt.num_rows(), 3);
        assert_eq!(rt.arity(), 2);
        assert_eq!(rt.row(0), &[3, 30]);
    }

    #[test]
    fn scan_with_predicates() {
        let rt = RowTable::from_table(&table());
        let hits = rt.scan(&[(0, RangePred::closed(2, 3)), (1, RangePred::closed(20, 30))]);
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn scan_project() {
        let rt = RowTable::from_table(&table());
        let rows = rt.scan_project(
            &[(0, RangePred::greater(crate::types::Bound::inclusive(2)))],
            &[1],
        );
        assert_eq!(rows, vec![vec![30], vec![20]]);
    }

    #[test]
    fn presorted_range() {
        let p = PresortedRowTable::build(&table(), 0);
        let r = p.select_range(&RangePred::closed(1, 2));
        let rows = p.project_range(r, &[], &[0, 1]);
        assert_eq!(rows, vec![vec![1, 10], vec![2, 20]]);
    }

    #[test]
    fn presorted_residual_filter() {
        let p = PresortedRowTable::build(&table(), 0);
        let r = p.select_range(&RangePred::all());
        let rows = p.project_range(r, &[(1, RangePred::point(20))], &[0]);
        assert_eq!(rows, vec![vec![2]]);
    }
}
