//! MonetDB-style two-column physical algebra operators.

pub mod group;
pub mod join;
pub mod parallel;
pub mod reconstruct;
pub mod select;
pub mod sort;
