//! Data-parallel scan and aggregate kernels.
//!
//! The batch-execution layer (`crackdb-engine`'s `BatchRunner`) enables
//! these kernels for the *read-only* phases of query execution: full
//! scans over base columns, positional gathers, and aggregate folds.
//! Cracking (physical reorganization) always stays sequential — its
//! correctness depends on in-order reorganization — so adaptive engines
//! keep their write phases untouched and only the scan/aggregate work
//! fans out.
//!
//! Parallelism is plain `std::thread::scope` over contiguous chunks (the
//! build environment is offline, so no rayon): each kernel splits its
//! input into one chunk per worker, processes chunks independently, and
//! merges in chunk order, which keeps key output order identical to the
//! serial kernels. The active worker count is a process-wide setting
//! ([`set_threads`]) flipped on by the batch layer around a batch and
//! restored to serial afterwards; kernels fall back to the serial path
//! for small inputs where spawn overhead would dominate.

use crate::column::Column;
use crate::types::{RangePred, RowId, Val};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker count for the parallel kernels (1 = serial).
static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Inputs smaller than this always take the serial path: thread spawn
/// costs ~10µs, a 16k-row chunk scans in about that.
pub const MIN_PARALLEL_ROWS: usize = 16_384;

/// Set the worker count used by the parallel kernels (clamped to ≥ 1).
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Current worker count.
pub fn threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// Split `[0, n)` into at most `t` near-equal chunks.
fn chunk_bounds(n: usize, t: usize) -> Vec<(usize, usize)> {
    let t = t.min(n).max(1);
    let base = n / t;
    let rem = n % t;
    let mut out = Vec::with_capacity(t);
    let mut lo = 0;
    for i in 0..t {
        let hi = lo + base + usize::from(i < rem);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Run `f` over each chunk of `[0, n)` on its own worker and collect the
/// chunk results in chunk order.
fn scatter<R: Send>(n: usize, f: impl Fn(usize, usize) -> R + Sync) -> Vec<R> {
    let bounds = chunk_bounds(n, threads());
    if bounds.len() <= 1 {
        return bounds.into_iter().map(|(lo, hi)| f(lo, hi)).collect();
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| s.spawn(move || f(lo, hi)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // Re-raise the worker's own payload so callers (tests,
                // batch sessions) see the original panic message instead
                // of a generic harness one.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Parallel full-scan range selection. Returns qualifying keys in
/// ascending (insertion) order — identical output to
/// [`select`](crate::ops::select::select).
pub fn par_select(col: &Column, pred: &RangePred) -> Vec<RowId> {
    let n = col.len();
    if threads() <= 1 || n < MIN_PARALLEL_ROWS {
        return crate::ops::select::select(col, pred);
    }
    let vals = col.values();
    let parts = scatter(n, |lo, hi| {
        let mut out = Vec::new();
        for (i, &v) in vals[lo..hi].iter().enumerate() {
            if pred.matches(v) {
                out.push((lo + i) as RowId);
            }
        }
        out
    });
    let mut keys = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        keys.extend_from_slice(&p);
    }
    keys
}

/// Parallel qualifying-tuple count (no key materialization).
pub fn par_count(col: &Column, pred: &RangePred) -> usize {
    let n = col.len();
    if threads() <= 1 || n < MIN_PARALLEL_ROWS {
        return crate::ops::select::count(col, pred);
    }
    let vals = col.values();
    scatter(n, |lo, hi| {
        vals[lo..hi].iter().filter(|&&v| pred.matches(v)).count()
    })
    .into_iter()
    .sum()
}

/// A mergeable partial aggregate: one fold computes every statistic the
/// aggregate functions need, so a chunk is scanned exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartialAgg {
    /// Number of values folded.
    pub count: i64,
    /// Wrapping sum.
    pub sum: i64,
    /// Minimum (`None` on empty input).
    pub min: Option<Val>,
    /// Maximum (`None` on empty input).
    pub max: Option<Val>,
}

impl PartialAgg {
    /// Fold one value.
    #[inline(always)]
    pub fn push(&mut self, v: Val) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Merge another chunk's partial into this one.
    pub fn merge(&mut self, other: &PartialAgg) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Fold a whole slice.
    fn from_values(vals: &[Val]) -> PartialAgg {
        let mut p = PartialAgg::default();
        for &v in vals {
            p.push(v);
        }
        p
    }
}

/// Parallel aggregate over a contiguous value slice.
pub fn par_agg_values(vals: &[Val]) -> PartialAgg {
    if threads() <= 1 || vals.len() < MIN_PARALLEL_ROWS {
        return PartialAgg::from_values(vals);
    }
    let mut total = PartialAgg::default();
    for p in scatter(vals.len(), |lo, hi| PartialAgg::from_values(&vals[lo..hi])) {
        total.merge(&p);
    }
    total
}

/// Parallel positional gather-aggregate: fold `col[k]` for every key.
/// Chunks the *key list*, so it parallelizes both the sequential
/// (ordered keys) and random (cracker results) reconstruction patterns.
pub fn par_agg_gather(col: &Column, keys: &[RowId]) -> PartialAgg {
    if threads() <= 1 || keys.len() < MIN_PARALLEL_ROWS {
        let mut p = PartialAgg::default();
        for &k in keys {
            p.push(col.get(k));
        }
        return p;
    }
    let mut total = PartialAgg::default();
    for p in scatter(keys.len(), |lo, hi| {
        let mut p = PartialAgg::default();
        for &k in &keys[lo..hi] {
            p.push(col.get(k));
        }
        p
    }) {
        total.merge(&p);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `f` with the worker count temporarily set to `n`.
    fn with_threads(n: usize, f: impl FnOnce()) {
        set_threads(n);
        f();
        set_threads(1);
    }

    fn col(n: usize) -> Column {
        // Deterministic, irregular values.
        Column::new((0..n as Val).map(|i| (i * 2654435761) % 100_000).collect())
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for n in [0usize, 1, 7, 100, 16_385] {
            for t in [1usize, 2, 3, 8] {
                let b = chunk_bounds(n, t);
                assert_eq!(b.first().map_or(0, |x| x.0), 0);
                assert_eq!(b.last().map_or(0, |x| x.1), n);
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn par_select_matches_serial() {
        let c = col(50_000);
        let pred = RangePred::open(10_000, 60_000);
        let serial = crate::ops::select::select(&c, &pred);
        with_threads(4, || {
            assert_eq!(par_select(&c, &pred), serial);
            assert_eq!(par_count(&c, &pred), serial.len());
        });
    }

    #[test]
    fn par_agg_matches_serial() {
        let c = col(40_000);
        let mut expected = PartialAgg::default();
        for &v in c.values() {
            expected.push(v);
        }
        with_threads(3, || {
            assert_eq!(par_agg_values(c.values()), expected);
            let keys: Vec<RowId> = (0..c.len() as RowId).rev().collect();
            assert_eq!(par_agg_gather(&c, &keys), expected);
        });
    }

    #[test]
    fn serial_fallback_below_threshold() {
        let c = col(100);
        with_threads(8, || {
            let pred = RangePred::all();
            assert_eq!(par_select(&c, &pred).len(), 100);
            assert_eq!(par_agg_values(c.values()).count, 100);
        });
    }

    #[test]
    fn scatter_preserves_panic_payload() {
        with_threads(4, || {
            let caught = std::panic::catch_unwind(|| {
                scatter(MIN_PARALLEL_ROWS * 4, |lo, _hi| {
                    if lo > 0 {
                        panic!("worker exploded at {lo}");
                    }
                    lo
                })
            })
            .expect_err("a worker panicked");
            let msg = caught
                .downcast_ref::<String>()
                .expect("payload is the worker's formatted message");
            assert!(
                msg.starts_with("worker exploded at "),
                "original payload must survive the join, got {msg:?}"
            );
        });
    }

    #[test]
    fn partial_agg_merge_identities() {
        let mut a = PartialAgg::default();
        let empty = PartialAgg::default();
        a.push(5);
        a.push(-3);
        let mut b = a;
        b.merge(&empty);
        assert_eq!(a, b);
        let mut e = empty;
        e.merge(&a);
        assert_eq!(e, a);
    }
}
