//! The `join(j1, j2)` operator: equi-join of two `(key, attr)` inputs on
//! their attr values, producing qualifying `(key1, key2)` pairs.
//!
//! As in MonetDB's physical algebra, the join preserves tuple order only
//! for the *outer* (left) input; the inner side's keys come out in hash
//! order, which is why post-join tuple reconstruction on the inner
//! relation degenerates to random access for every system in the paper's
//! Exp4.

use crate::types::{RowId, Val};
use std::collections::HashMap;

/// Hash equi-join. `left` is the outer input whose order is preserved in
/// the output; `right` is built into a hash table.
pub fn hash_join(left: &[(RowId, Val)], right: &[(RowId, Val)]) -> Vec<(RowId, RowId)> {
    let mut table: HashMap<Val, Vec<RowId>> = HashMap::with_capacity(right.len());
    for &(k, v) in right {
        table.entry(v).or_default().push(k);
    }
    let mut out = Vec::new();
    for &(lk, lv) in left {
        if let Some(matches) = table.get(&lv) {
            for &rk in matches {
                out.push((lk, rk));
            }
        }
    }
    out
}

/// Join returning only the matched keys of each side (common case when the
/// join is a pure connector between two filtered relations).
pub fn hash_join_keys(left: &[(RowId, Val)], right: &[(RowId, Val)]) -> (Vec<RowId>, Vec<RowId>) {
    let pairs = hash_join(left, right);
    let mut lk = Vec::with_capacity(pairs.len());
    let mut rk = Vec::with_capacity(pairs.len());
    for (l, r) in pairs {
        lk.push(l);
        rk.push(r);
    }
    (lk, rk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_join() {
        let l = vec![(0, 7), (1, 8), (2, 7)];
        let r = vec![(10, 7), (11, 9)];
        let out = hash_join(&l, &r);
        assert_eq!(out, vec![(0, 10), (2, 10)]);
    }

    #[test]
    fn preserves_left_order() {
        let l = vec![(5, 1), (3, 2), (9, 1)];
        let r = vec![(0, 1), (1, 2)];
        let out = hash_join(&l, &r);
        let left_keys: Vec<_> = out.iter().map(|p| p.0).collect();
        assert_eq!(left_keys, vec![5, 3, 9]);
    }

    #[test]
    fn duplicates_multiply() {
        let l = vec![(0, 4)];
        let r = vec![(1, 4), (2, 4)];
        assert_eq!(hash_join(&l, &r).len(), 2);
    }

    #[test]
    fn split_keys() {
        let l = vec![(0, 1), (1, 2)];
        let r = vec![(8, 2)];
        let (lk, rk) = hash_join_keys(&l, &r);
        assert_eq!(lk, vec![1]);
        assert_eq!(rk, vec![8]);
    }

    #[test]
    fn empty_inputs() {
        assert!(hash_join(&[], &[(0, 1)]).is_empty());
        assert!(hash_join(&[(0, 1)], &[]).is_empty());
    }
}
