//! The `reconstruct(A, r)` operator: fetch `(key, attr)` pairs of base
//! column `A` at the positions listed in `r`.
//!
//! This is *the* cost component the paper attacks. When `r` comes from an
//! order-preserving operator the lookups are in ascending position order —
//! sequential, cache-friendly. When `r` is unordered (e.g. after selection
//! cracking or a join) the lookups are random, lacking spatial and temporal
//! locality. Both paths execute identical code here; the memory system
//! makes the difference, which the benchmarks measure.

use crate::column::Column;
use crate::types::{RowId, Val};

/// Fetch values of `col` at `keys` (any order). The access pattern —
/// sequential vs random — is dictated by the order of `keys`.
pub fn reconstruct(col: &Column, keys: &[RowId]) -> Vec<Val> {
    let values = col.values();
    keys.iter().map(|&k| values[k as usize]).collect()
}

/// Fetch values and pair them with their keys, for operators that need to
/// propagate tuple identity.
pub fn reconstruct_pairs(col: &Column, keys: &[RowId]) -> Vec<(RowId, Val)> {
    let values = col.values();
    keys.iter().map(|&k| (k, values[k as usize])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_fetch() {
        let c = Column::new(vec![10, 20, 30, 40]);
        assert_eq!(reconstruct(&c, &[0, 2, 3]), vec![10, 30, 40]);
    }

    #[test]
    fn unordered_fetch_preserves_key_order_of_input() {
        let c = Column::new(vec![10, 20, 30, 40]);
        assert_eq!(reconstruct(&c, &[3, 0, 2]), vec![40, 10, 30]);
    }

    #[test]
    fn pairs_carry_keys() {
        let c = Column::new(vec![5, 6]);
        assert_eq!(reconstruct_pairs(&c, &[1, 0]), vec![(1, 6), (0, 5)]);
    }

    #[test]
    fn empty_keys() {
        let c = Column::new(vec![1]);
        assert!(reconstruct(&c, &[]).is_empty());
    }
}
