//! The `select(A, v1, v2)` operator: scan a base column, return qualifying
//! keys (positions) in tuple-insertion order.
//!
//! Because base columns are stored in insertion order and the scan visits
//! them sequentially, the result key list is ordered — downstream
//! [`reconstruct`](crate::ops::reconstruct) calls then enjoy in-order
//! positional lookups, the cache-friendly pattern the paper contrasts with
//! selection cracking's unordered results.

use crate::column::Column;
use crate::types::{RangePred, RowId};

/// Full-scan range selection over a base column. Returns qualifying keys in
/// ascending (insertion) order.
pub fn select(col: &Column, pred: &RangePred) -> Vec<RowId> {
    let mut out = Vec::new();
    for (i, &v) in col.values().iter().enumerate() {
        if pred.matches(v) {
            out.push(i as RowId);
        }
    }
    out
}

/// Count qualifying tuples without materializing keys (used by aggregate
/// pushdown and tests).
pub fn count(col: &Column, pred: &RangePred) -> usize {
    col.values().iter().filter(|&&v| pred.matches(v)).count()
}

/// Intersect an ordered key list with a predicate on another column:
/// keeps keys whose value in `col` matches `pred`. This is the plain
/// column-store plan for conjunctive multi-attribute selections (scan the
/// first column, then probe the remaining ones positionally).
pub fn refine(col: &Column, keys: &[RowId], pred: &RangePred) -> Vec<RowId> {
    keys.iter()
        .copied()
        .filter(|&k| pred.matches(col.get(k)))
        .collect()
}

/// Union-style refinement for disjunctions: returns the ordered merge of
/// `keys` with all other positions in `col` matching `pred`.
pub fn union_scan(col: &Column, keys: &[RowId], pred: &RangePred) -> Vec<RowId> {
    let mut out = Vec::with_capacity(keys.len());
    let mut ki = 0usize;
    for (i, &v) in col.values().iter().enumerate() {
        let i = i as RowId;
        let in_keys = ki < keys.len() && keys[ki] == i;
        if in_keys {
            ki += 1;
        }
        if in_keys || pred.matches(v) {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RangePred;

    fn col() -> Column {
        Column::new(vec![12, 3, 5, 9, 15, 22, 7, 26, 4, 2])
    }

    #[test]
    fn select_open_range() {
        // The paper's Figure 1 query: 10 < A < 15 over the example column.
        let keys = select(&col(), &RangePred::open(10, 15));
        assert_eq!(keys, vec![0]); // only value 12 at position 0
    }

    #[test]
    fn select_is_ordered() {
        let keys = select(&col(), &RangePred::open(2, 16));
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 6, 8]);
    }

    #[test]
    fn count_matches_select_len() {
        let p = RangePred::open(4, 23);
        assert_eq!(count(&col(), &p), select(&col(), &p).len());
    }

    #[test]
    fn refine_conjunction() {
        let c1 = col();
        let c2 = Column::new(vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let keys = select(&c1, &RangePred::open(2, 16)); // 0,1,2,3,4,6,8
        let refined = refine(&c2, &keys, &RangePred::open(3, 8));
        // keys where c2 value in (3,8): positions 3(4),4(5),6(7)
        assert_eq!(refined, vec![3, 4, 6]);
    }

    #[test]
    fn union_scan_disjunction() {
        let c = Column::new(vec![1, 5, 9, 5, 1]);
        let keys = vec![0]; // already-qualifying keys
        let merged = union_scan(&c, &keys, &RangePred::point(5));
        assert_eq!(merged, vec![0, 1, 3]);
    }

    #[test]
    fn union_scan_no_duplicates_when_overlapping() {
        let c = Column::new(vec![1, 5, 9]);
        let keys = vec![1];
        let merged = union_scan(&c, &keys, &RangePred::point(5));
        assert_eq!(merged, vec![1]);
    }
}
