//! `orderby` and sort utilities, including the permutation machinery used
//! to build presorted table copies.

use crate::types::{RowId, Val};

/// Stable sort of keys by their values; returns keys in ascending value
/// order. This is the `orderby` operator — note the output key order no
/// longer matches insertion order (not tuple order-preserving).
pub fn order_by(keys: &[RowId], vals: &[Val]) -> Vec<RowId> {
    assert_eq!(keys.len(), vals.len());
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by_key(|&i| vals[i]);
    idx.into_iter().map(|i| keys[i]).collect()
}

/// Compute the sort permutation of `vals`: `perm[i]` is the original
/// position of the i-th smallest value (stable).
pub fn sort_permutation(vals: &[Val]) -> Vec<RowId> {
    let mut idx: Vec<RowId> = (0..vals.len() as RowId).collect();
    idx.sort_by_key(|&i| vals[i as usize]);
    idx
}

/// Apply a permutation: `out[i] = vals[perm[i]]`.
pub fn apply_permutation(vals: &[Val], perm: &[RowId]) -> Vec<Val> {
    perm.iter().map(|&i| vals[i as usize]).collect()
}

/// Sort `(key, value)` pairs by key — used to reorder unordered
/// intermediate results before reconstruction (paper Exp3's
/// "sort + ordered TR" strategy).
pub fn sort_pairs_by_key(pairs: &mut [(RowId, Val)]) {
    pairs.sort_unstable_by_key(|p| p.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_by_sorts_by_value() {
        let keys = [10, 11, 12];
        let vals = [3, 1, 2];
        assert_eq!(order_by(&keys, &vals), vec![11, 12, 10]);
    }

    #[test]
    fn order_by_is_stable() {
        let keys = [0, 1, 2];
        let vals = [5, 5, 1];
        assert_eq!(order_by(&keys, &vals), vec![2, 0, 1]);
    }

    #[test]
    fn permutation_roundtrip() {
        let vals = [30, 10, 20];
        let perm = sort_permutation(&vals);
        assert_eq!(perm, vec![1, 2, 0]);
        assert_eq!(apply_permutation(&vals, &perm), vec![10, 20, 30]);
    }

    #[test]
    fn sort_pairs() {
        let mut pairs = vec![(3, 30), (1, 10), (2, 20)];
        sort_pairs_by_key(&mut pairs);
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
    }
}
