//! `groupby` / aggregation operators. Like their MonetDB counterparts,
//! these do **not** preserve tuple order — results come out in group-hash
//! order — which is why queries with group-bys force subsequent tuple
//! reconstructions onto random access paths (paper §2.1, §5).

use crate::types::{aggregate, AggFunc, AggResult, RowId, Val};
use std::collections::HashMap;

/// Group `rows` by the values in `group_vals` (parallel slices) and
/// aggregate `agg_vals` within each group.
///
/// Returns `(group_value, agg_result, member_keys)` triples in hash order.
pub fn group_aggregate(
    keys: &[RowId],
    group_vals: &[Val],
    agg_vals: &[Val],
    func: AggFunc,
) -> Vec<(Val, AggResult, Vec<RowId>)> {
    assert_eq!(keys.len(), group_vals.len());
    assert_eq!(keys.len(), agg_vals.len());
    let mut groups: HashMap<Val, (Vec<Val>, Vec<RowId>)> = HashMap::new();
    for i in 0..keys.len() {
        let e = groups.entry(group_vals[i]).or_default();
        e.0.push(agg_vals[i]);
        e.1.push(keys[i]);
    }
    groups
        .into_iter()
        .map(|(g, (vals, ks))| (g, aggregate(func, vals), ks))
        .collect()
}

/// Multi-column grouping: group identity is the tuple of values across
/// `group_cols` (each a parallel slice). Aggregates each column in
/// `agg_cols` with its paired function.
pub fn group_aggregate_multi(
    group_cols: &[&[Val]],
    agg_cols: &[(&[Val], AggFunc)],
) -> Vec<(Vec<Val>, Vec<AggResult>)> {
    let n = group_cols
        .first()
        .map_or_else(|| agg_cols.first().map_or(0, |(c, _)| c.len()), |c| c.len());
    for c in group_cols {
        assert_eq!(c.len(), n, "group column length mismatch");
    }
    for (c, _) in agg_cols {
        assert_eq!(c.len(), n, "aggregate column length mismatch");
    }
    let mut groups: HashMap<Vec<Val>, Vec<Vec<Val>>> = HashMap::new();
    for i in 0..n {
        let key: Vec<Val> = group_cols.iter().map(|c| c[i]).collect();
        let slot = groups
            .entry(key)
            .or_insert_with(|| vec![Vec::new(); agg_cols.len()]);
        for (j, (c, _)) in agg_cols.iter().enumerate() {
            slot[j].push(c[i]);
        }
    }
    groups
        .into_iter()
        .map(|(k, cols)| {
            let aggs = cols
                .into_iter()
                .zip(agg_cols.iter())
                .map(|(vals, (_, f))| aggregate(*f, vals))
                .collect();
            (k, aggs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_column_grouping() {
        let keys = [0, 1, 2, 3];
        let groups = [1, 2, 1, 2];
        let vals = [10, 20, 30, 40];
        let mut out = group_aggregate(&keys, &groups, &vals, AggFunc::Sum);
        out.sort_by_key(|g| g.0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 1);
        assert_eq!(out[0].1.as_int(), Some(40));
        assert_eq!(out[0].2, vec![0, 2]);
        assert_eq!(out[1].1.as_int(), Some(60));
    }

    #[test]
    fn multi_column_grouping() {
        let g1 = [1, 1, 2, 2];
        let g2 = [5, 6, 5, 5];
        let v = [1, 1, 1, 1];
        let mut out = group_aggregate_multi(&[&g1, &g2], &[(&v, AggFunc::Count)]);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].0, vec![2, 5]);
        assert_eq!(out[2].1[0].as_int(), Some(2));
    }

    #[test]
    fn empty_grouping() {
        let out = group_aggregate(&[], &[], &[], AggFunc::Max);
        assert!(out.is_empty());
    }

    #[test]
    fn multiple_aggregates() {
        let g = [1, 1];
        let a = [3, 5];
        let b = [10, 2];
        let out = group_aggregate_multi(&[&g], &[(&a, AggFunc::Max), (&b, AggFunc::Min)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1[0].as_int(), Some(5));
        assert_eq!(out[0].1[1].as_int(), Some(2));
    }
}
