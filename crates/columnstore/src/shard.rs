//! Row-wise horizontal partitioning helpers.
//!
//! The sharded execution layer (`crackdb-engine`'s `ShardedEngine`)
//! splits a base table into contiguous row ranges, one per shard, and
//! gives every shard its own fully independent engine. The helpers here
//! own the arithmetic that layer needs: computing near-equal cuts,
//! slicing a [`Table`] along them, and translating tuple keys between
//! the global (unsharded) key space and a shard's local key space.
//!
//! The key-space contract: shard `s` holds the global rows
//! `[cuts[s], cuts[s+1])` in their original order, so a shard-local key
//! `l` corresponds to global key `cuts[s] + l` and vice versa. Keeping
//! this mapping explicit (rather than baked into each caller) is what
//! lets differential tests drive a sharded and an unsharded engine with
//! the *same* key stream.

use crate::column::{Column, Table};
use crate::types::RowId;

/// The cut positions of a row-wise partitioning: `shards + 1` ascending
/// offsets with `cuts[0] == 0` and `cuts[shards] == rows`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCuts {
    cuts: Vec<usize>,
}

impl ShardCuts {
    /// Near-equal contiguous cuts of `rows` tuples into `shards` parts
    /// (the first `rows % shards` shards get one extra tuple). Shards may
    /// be empty when `shards > rows`.
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn even(rows: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let base = rows / shards;
        let rem = rows % shards;
        let mut cuts = Vec::with_capacity(shards + 1);
        let mut lo = 0;
        cuts.push(0);
        for s in 0..shards {
            lo += base + usize::from(s < rem);
            cuts.push(lo);
        }
        ShardCuts { cuts }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cuts.len() - 1
    }

    /// Total rows covered.
    pub fn total_rows(&self) -> usize {
        // INVARIANT: the constructor always pushes cut 0 first, so
        // `cuts` holds at least one element for the whole lifetime.
        *self.cuts.last().expect("cuts are never empty")
    }

    /// Global row range `[start, end)` of shard `s`.
    pub fn range(&self, s: usize) -> (usize, usize) {
        (self.cuts[s], self.cuts[s + 1])
    }

    /// Number of rows in shard `s`.
    pub fn len_of(&self, s: usize) -> usize {
        self.cuts[s + 1] - self.cuts[s]
    }

    /// Map a global key into `(shard, local key)`.
    ///
    /// # Panics
    /// If `key` is outside the partitioned range.
    pub fn locate(&self, key: RowId) -> (usize, RowId) {
        let k = key as usize;
        assert!(k < self.total_rows(), "key {key} outside partitioning");
        // partition_point: first cut > k, minus one, is k's shard. Empty
        // shards share a cut value and are skipped automatically.
        let s = self.cuts.partition_point(|&c| c <= k) - 1;
        (s, (k - self.cuts[s]) as RowId)
    }

    /// Map a shard-local key back to the global key space (the inverse
    /// of [`Self::locate`]).
    pub fn rebase(&self, shard: usize, local: RowId) -> RowId {
        (self.cuts[shard] + local as usize) as RowId
    }

    /// Cuts matching already-partitioned parts of the given sizes (the
    /// inverse of [`partition_table`]: data that arrives pre-sharded).
    ///
    /// # Panics
    /// If `sizes` is empty.
    pub fn from_sizes(sizes: impl IntoIterator<Item = usize>) -> Self {
        let mut cuts = vec![0];
        let mut lo = 0;
        for s in sizes {
            lo += s;
            cuts.push(lo);
        }
        assert!(cuts.len() > 1, "need at least one shard");
        ShardCuts { cuts }
    }
}

impl Table {
    /// A new table holding rows `[lo, hi)` of this one (same columns,
    /// same order).
    ///
    /// # Panics
    /// If `lo > hi` or `hi` exceeds the row count.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Table {
        assert!(lo <= hi && hi <= self.num_rows(), "bad row range");
        let mut out = Table::new();
        for (i, name) in self.names().iter().enumerate() {
            out.add_column(
                name.clone(),
                Column::new(self.column(i).values()[lo..hi].to_vec()),
            );
        }
        out
    }
}

/// Split `table` into one sub-table per shard along `cuts`. Concatenating
/// the results in shard order reproduces `table` exactly.
pub fn partition_table(table: &Table, cuts: &ShardCuts) -> Vec<Table> {
    assert_eq!(
        cuts.total_rows(),
        table.num_rows(),
        "cuts must cover the table"
    );
    (0..cuts.shard_count())
        .map(|s| {
            let (lo, hi) = cuts.range(s);
            table.slice_rows(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new((0..n as i64).collect()));
        t.add_column("b", Column::new((0..n as i64).map(|v| v * 10).collect()));
        t
    }

    #[test]
    fn even_cuts_cover_exactly() {
        for rows in [0usize, 1, 5, 7, 100] {
            for shards in [1usize, 2, 3, 7, 11] {
                let c = ShardCuts::even(rows, shards);
                assert_eq!(c.shard_count(), shards);
                assert_eq!(c.total_rows(), rows);
                let total: usize = (0..shards).map(|s| c.len_of(s)).sum();
                assert_eq!(total, rows);
                // Sizes differ by at most one. min/max default to 0 so
                // the 0-shard degenerate case (should `even` ever stop
                // rejecting it) reports a clean assertion failure
                // instead of an unwrap panic inside the test itself.
                let sizes: Vec<usize> = (0..shards).map(|s| c.len_of(s)).collect();
                let mn = sizes.iter().copied().min().unwrap_or(0);
                let mx = sizes.iter().copied().max().unwrap_or(0);
                assert!(mx - mn <= 1, "{rows} rows x {shards} shards: {sizes:?}");
            }
        }
    }

    #[test]
    fn locate_and_rebase_roundtrip() {
        let c = ShardCuts::even(10, 3); // 4, 3, 3
        for key in 0..10u32 {
            let (s, local) = c.locate(key);
            let (lo, hi) = c.range(s);
            assert!((lo..hi).contains(&(key as usize)));
            assert_eq!(c.rebase(s, local), key);
        }
        assert_eq!(c.locate(0), (0, 0));
        assert_eq!(c.locate(4), (1, 0));
        assert_eq!(c.locate(9), (2, 2));
    }

    #[test]
    fn locate_skips_empty_shards() {
        let c = ShardCuts::even(2, 5); // 1, 1, 0, 0, 0
        assert_eq!(c.locate(0), (0, 0));
        assert_eq!(c.locate(1), (1, 0));
        assert_eq!(c.len_of(3), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn locate_rejects_out_of_range() {
        ShardCuts::even(3, 2).locate(3);
    }

    #[test]
    fn partition_concat_identity() {
        let t = table(11);
        let cuts = ShardCuts::even(11, 4);
        let parts = partition_table(&t, &cuts);
        assert_eq!(parts.len(), 4);
        for col in 0..t.num_columns() {
            let concat: Vec<i64> = parts
                .iter()
                .flat_map(|p| p.column(col).values().iter().copied())
                .collect();
            assert_eq!(concat, t.column(col).values());
        }
        // Names preserved.
        assert_eq!(parts[0].names(), t.names());
    }

    #[test]
    fn partition_with_empty_shards() {
        let t = table(3);
        let parts = partition_table(&t, &ShardCuts::even(3, 7));
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.iter().map(Table::num_rows).sum::<usize>(), 3);
        assert!(parts[5].num_rows() == 0 && parts[5].num_columns() == 2);
    }

    /// The 0-row / 0-shard degenerate cases `tests/degenerate.rs`
    /// stresses at the engine layer, pinned here at the helper layer:
    /// every total operation stays total on empty input, and the
    /// partial ones reject it with their documented message instead of
    /// an incidental unwrap panic.
    #[test]
    fn zero_row_degenerate_cases_are_total() {
        let c = ShardCuts::even(0, 3);
        assert_eq!(c.total_rows(), 0);
        assert_eq!((0..3).map(|s| c.len_of(s)).sum::<usize>(), 0);
        assert_eq!(c.range(2), (0, 0));
        // Partitioning a 0-row table yields empty shards with the
        // schema intact.
        let t = table(0);
        let parts = partition_table(&t, &c);
        assert_eq!(parts.len(), 3);
        assert!(parts
            .iter()
            .all(|p| p.num_rows() == 0 && p.num_columns() == 2));
        // Empty-boundary slicing and all-empty from_sizes stay total.
        assert_eq!(t.slice_rows(0, 0).num_rows(), 0);
        let z = ShardCuts::from_sizes([0, 0, 0]);
        assert_eq!(z.total_rows(), 0);
        assert_eq!(z.shard_count(), 3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn locate_on_zero_rows_rejects_every_key() {
        ShardCuts::even(0, 2).locate(0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_are_rejected() {
        ShardCuts::even(10, 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn from_sizes_rejects_no_shards() {
        ShardCuts::from_sizes(Vec::new());
    }

    #[test]
    fn from_sizes_inverts_partitioning() {
        let even = ShardCuts::even(10, 3);
        assert_eq!(ShardCuts::from_sizes([4, 3, 3]), even);
        let uneven = ShardCuts::from_sizes([0, 5, 2]);
        assert_eq!(uneven.shard_count(), 3);
        assert_eq!(uneven.total_rows(), 7);
        assert_eq!(uneven.locate(4), (1, 4));
        assert_eq!(uneven.locate(5), (2, 0));
    }
}
