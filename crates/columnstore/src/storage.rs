//! Segmented column storage: the disk tier under the BAT model.
//!
//! A [`SegmentedColumn`] keeps a base column in a plain file of
//! fixed-size segments (no mmap — the image is offline, so the file is
//! read with `pread`-style positioned reads via [`std::os::unix::fs::FileExt`])
//! and caches a bounded number of resident segments. Values are `i64`
//! little-endian; every segment carries an FNV-1a checksum in a footer so
//! a truncated or corrupted file fails loudly instead of answering
//! queries from garbage.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! [ 0.. 8)  magic  "CRKSEG01"
//! [ 8..16)  u64    number of values
//! [16..24)  u64    segment length (values per segment)
//! [24..32)  u64    reserved (zero)
//! [32..32 + len*8)          values, i64 LE
//! [32 + len*8 .. + nseg*8)  per-segment FNV-1a64 checksums
//! ```
//!
//! Every fallible operation returns a [`StorageError`] carrying the I/O
//! source and a human context line; higher layers convert it into a
//! typed query error instead of panicking.

use crate::sync::lock_unpoisoned;
use crate::types::{RowId, Val};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// File magic of a segmented column.
pub const SEGMENT_MAGIC: &[u8; 8] = b"CRKSEG01";
/// Header bytes before the first value.
const HEADER_LEN: u64 = 32;
/// Default values per segment (64Ki values = 512 KiB).
pub const DEFAULT_SEGMENT_LEN: usize = 1 << 16;

/// A storage-tier failure: the I/O error plus where it happened. This is
/// the one error type every disk path (segmented base columns, spill
/// files) funnels into; engines wrap it into their typed query errors.
#[derive(Debug)]
pub struct StorageError {
    /// What the storage layer was doing (file, operation).
    pub context: String,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl StorageError {
    /// Wrap an I/O error with a context line.
    pub fn new(context: impl Into<String>, source: io::Error) -> Self {
        StorageError {
            context: context.into(),
            source,
        }
    }

    /// A data-integrity failure (bad magic, checksum mismatch, short
    /// record): reported as `InvalidData` so callers can distinguish
    /// corruption from environmental I/O trouble.
    pub fn corrupt(context: impl Into<String>, detail: impl Into<String>) -> Self {
        StorageError {
            context: context.into(),
            source: io::Error::new(io::ErrorKind::InvalidData, detail.into()),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.source)
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// FNV-1a 64-bit over a byte slice: the checksum for segments and spill
/// records. Dependency-free and fast enough for 512 KiB segments.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode a value slice as little-endian bytes.
fn encode_vals(vals: &[Val]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into values.
fn decode_vals(bytes: &[u8], out: &mut Vec<Val>) {
    out.clear();
    out.reserve(bytes.len() / 8);
    for c in bytes.chunks_exact(8) {
        // INVARIANT: chunks_exact(8) yields exactly-8-byte slices.
        out.push(Val::from_le_bytes(c.try_into().expect("chunks_exact(8)")));
    }
}

/// Cache of resident segments with LRU eviction.
#[derive(Debug)]
struct SegCache {
    map: HashMap<u32, (Arc<Vec<Val>>, u64)>,
    clock: u64,
    max_segments: usize,
    hits: u64,
    misses: u64,
}

/// Immutable description of the on-disk column.
#[derive(Debug)]
struct SegSource {
    file: File,
    path: PathBuf,
    len: usize,
    segment_len: usize,
}

/// A base column stored as fixed-size segments in a file, with a bounded
/// resident-segment cache. Cloning shares the file and the cache.
#[derive(Debug, Clone)]
pub struct SegmentedColumn {
    source: Arc<SegSource>,
    cache: Arc<Mutex<SegCache>>,
}

/// Streaming builder: push values in key order, then
/// [`finish`](SegmentWriter::finish) — the column is written segment by
/// segment, so tables larger than RAM are built without materializing
/// any full column.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    segment_len: usize,
    buf: Vec<Val>,
    checksums: Vec<u64>,
    written: u64,
}

impl SegmentWriter {
    /// Create (truncate) `path` and start a column with `segment_len`
    /// values per segment.
    pub fn create(path: impl AsRef<Path>, segment_len: usize) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        assert!(segment_len > 0, "segment length must be positive");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| StorageError::new(format!("create segment file {}", path.display()), e))?;
        // Placeholder header; patched with the final length in finish().
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(SEGMENT_MAGIC);
        header[16..24].copy_from_slice(&(segment_len as u64).to_le_bytes());
        file.write_all(&header)
            .map_err(|e| StorageError::new(format!("write header {}", path.display()), e))?;
        Ok(SegmentWriter {
            file,
            path,
            segment_len,
            buf: Vec::with_capacity(segment_len),
            checksums: Vec::new(),
            written: 0,
        })
    }

    fn flush_segment(&mut self) -> Result<(), StorageError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let bytes = encode_vals(&self.buf);
        self.checksums.push(fnv1a64(&bytes));
        self.file
            .write_all(&bytes)
            .map_err(|e| StorageError::new(format!("write segment {}", self.path.display()), e))?;
        self.written += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Append one value.
    pub fn push(&mut self, v: Val) -> Result<(), StorageError> {
        self.buf.push(v);
        if self.buf.len() == self.segment_len {
            self.flush_segment()?;
        }
        Ok(())
    }

    /// Flush, write the checksum footer and the final header, and open
    /// the column with a cache of `cache_segments` resident segments.
    pub fn finish(mut self, cache_segments: usize) -> Result<SegmentedColumn, StorageError> {
        self.flush_segment()?;
        let footer = encode_vals(&self.checksums.iter().map(|&c| c as Val).collect::<Vec<_>>());
        self.file
            .write_all(&footer)
            .map_err(|e| StorageError::new(format!("write footer {}", self.path.display()), e))?;
        self.file
            .write_at(&self.written.to_le_bytes(), 8)
            .map_err(|e| StorageError::new(format!("patch header {}", self.path.display()), e))?;
        self.file
            .sync_data()
            .map_err(|e| StorageError::new(format!("sync {}", self.path.display()), e))?;
        SegmentedColumn::open(&self.path, cache_segments)
    }
}

impl SegmentedColumn {
    /// Open an existing segment file, validating its header.
    pub fn open(path: impl AsRef<Path>, cache_segments: usize) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)
            .map_err(|e| StorageError::new(format!("open segment file {}", path.display()), e))?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact_at(&mut header, 0)
            .map_err(|e| StorageError::new(format!("read header {}", path.display()), e))?;
        if &header[..8] != SEGMENT_MAGIC {
            return Err(StorageError::corrupt(
                format!("open segment file {}", path.display()),
                "bad magic (not a crackdb segment file)",
            ));
        }
        // INVARIANT: fixed subranges of the `[u8; HEADER_LEN]` array
        // are always exactly 8 bytes; try_into cannot fail.
        let len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) as usize;
        // INVARIANT: same fixed-width header subrange as above.
        let segment_len = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")) as usize;
        if segment_len == 0 {
            return Err(StorageError::corrupt(
                format!("open segment file {}", path.display()),
                "zero segment length",
            ));
        }
        Ok(SegmentedColumn {
            source: Arc::new(SegSource {
                file,
                path,
                len,
                segment_len,
            }),
            cache: Arc::new(Mutex::new(SegCache {
                map: HashMap::new(),
                clock: 0,
                max_segments: cache_segments.max(1),
                hits: 0,
                misses: 0,
            })),
        })
    }

    /// Build a column by streaming `len` generated values to `path`.
    pub fn create_with(
        path: impl AsRef<Path>,
        len: usize,
        segment_len: usize,
        cache_segments: usize,
        mut gen: impl FnMut(usize) -> Val,
    ) -> Result<Self, StorageError> {
        let mut w = SegmentWriter::create(path, segment_len)?;
        for i in 0..len {
            w.push(gen(i))?;
        }
        w.finish(cache_segments)
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.source.len
    }

    /// `true` when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.source.len == 0
    }

    /// Values per segment.
    pub fn segment_len(&self) -> usize {
        self.source.segment_len
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.source.len.div_ceil(self.source.segment_len)
    }

    /// `(hits, misses)` of the segment cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = lock_unpoisoned(&self.cache);
        (c.hits, c.misses)
    }

    /// Bytes currently resident in the segment cache.
    pub fn resident_bytes(&self) -> usize {
        let c = lock_unpoisoned(&self.cache);
        c.map.values().map(|(s, _)| s.len() * 8).sum()
    }

    fn seg_bounds(&self, seg: u32) -> (usize, usize) {
        let start = seg as usize * self.source.segment_len;
        let end = (start + self.source.segment_len).min(self.source.len);
        (start, end)
    }

    /// Read one segment from disk, verifying its checksum. Does not touch
    /// the cache (sequential scans use this directly so they cannot evict
    /// the hot random-access set).
    fn read_segment(&self, seg: u32, out: &mut Vec<Val>) -> Result<(), StorageError> {
        let (start, end) = self.seg_bounds(seg);
        let nbytes = (end - start) * 8;
        let mut bytes = vec![0u8; nbytes];
        let src = &self.source;
        let ctx = || format!("read segment {seg} of {}", src.path.display());
        src.file
            .read_exact_at(&mut bytes, HEADER_LEN + (start as u64) * 8)
            .map_err(|e| StorageError::new(ctx(), e))?;
        let mut sum = [0u8; 8];
        src.file
            .read_exact_at(
                &mut sum,
                HEADER_LEN + (src.len as u64) * 8 + (seg as u64) * 8,
            )
            .map_err(|e| StorageError::new(ctx(), e))?;
        let expected = u64::from_le_bytes(sum);
        let actual = fnv1a64(&bytes);
        if actual != expected {
            return Err(StorageError::corrupt(
                ctx(),
                format!("segment checksum mismatch (expected {expected:#x}, got {actual:#x})"),
            ));
        }
        decode_vals(&bytes, out);
        Ok(())
    }

    /// The segment `seg` as a cached resident slice, loading (and LRU
    /// evicting) as needed.
    fn load_segment(&self, seg: u32) -> Result<Arc<Vec<Val>>, StorageError> {
        {
            let mut c = lock_unpoisoned(&self.cache);
            c.clock += 1;
            let clock = c.clock;
            if let Some(entry) = c.map.get_mut(&seg) {
                entry.1 = clock;
                let vals = Arc::clone(&entry.0);
                c.hits += 1;
                return Ok(vals);
            }
            c.misses += 1;
        }
        // Load outside the lock; racing loads of the same segment are
        // harmless (last writer wins, both Arcs are valid).
        let mut vals = Vec::new();
        self.read_segment(seg, &mut vals)?;
        let vals = Arc::new(vals);
        let mut c = lock_unpoisoned(&self.cache);
        while c.map.len() >= c.max_segments {
            let coldest = c
                .map
                .iter()
                .min_by_key(|(&s, &(_, stamp))| (stamp, s))
                .map(|(&s, _)| s);
            match coldest {
                Some(s) => {
                    c.map.remove(&s);
                }
                None => break,
            }
        }
        let clock = c.clock;
        c.map.insert(seg, (Arc::clone(&vals), clock));
        Ok(vals)
    }

    /// Value at `key`, through the segment cache.
    pub fn get(&self, key: RowId) -> Result<Val, StorageError> {
        let mut memo = None;
        self.get_with_memo(key, &mut memo)
    }

    /// Value at `key`, memoizing the last touched segment in `memo` so
    /// gathers with segment locality skip the cache lock.
    pub fn get_with_memo(
        &self,
        key: RowId,
        memo: &mut Option<(u32, Arc<Vec<Val>>)>,
    ) -> Result<Val, StorageError> {
        let k = key as usize;
        assert!(k < self.source.len, "key {k} out of range");
        let seg = (k / self.source.segment_len) as u32;
        if let Some((s, vals)) = memo {
            if *s == seg {
                return Ok(vals[k % self.source.segment_len]);
            }
        }
        let vals = self.load_segment(seg)?;
        let v = vals[k % self.source.segment_len];
        *memo = Some((seg, vals));
        Ok(v)
    }

    /// Stream every segment in key order: `f(first_key, values)`.
    /// Reads bypass the cache (a full scan must not evict the hot set)
    /// and verify checksums.
    pub fn for_each_segment(&self, mut f: impl FnMut(usize, &[Val])) -> Result<(), StorageError> {
        let mut vals = Vec::new();
        for seg in 0..self.num_segments() as u32 {
            self.read_segment(seg, &mut vals)?;
            f(self.seg_bounds(seg).0, &vals);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "crackdb-storage-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn roundtrip_and_cache() {
        let path = tmp("roundtrip");
        let col = SegmentedColumn::create_with(&path, 1000, 64, 4, |i| i as Val * 3).unwrap();
        assert_eq!(col.len(), 1000);
        assert_eq!(col.num_segments(), 16);
        for k in [0u32, 63, 64, 999, 500, 1, 999] {
            assert_eq!(col.get(k).unwrap(), k as Val * 3);
        }
        let (hits, misses) = col.cache_stats();
        assert!(hits >= 1, "repeated keys hit the cache");
        assert!(misses <= 6, "cache bounds loads");
        assert!(col.resident_bytes() <= 4 * 64 * 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sequential_scan_matches() {
        let path = tmp("scan");
        let col = SegmentedColumn::create_with(&path, 257, 32, 2, |i| 1000 - i as Val).unwrap();
        let mut seen = Vec::new();
        col.for_each_segment(|start, vals| {
            assert_eq!(start, seen.len());
            seen.extend_from_slice(vals);
        })
        .unwrap();
        assert_eq!(seen.len(), 257);
        assert!(seen.iter().enumerate().all(|(i, &v)| v == 1000 - i as Val));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt");
        let col = SegmentedColumn::create_with(&path, 100, 16, 2, |i| i as Val).unwrap();
        drop(col);
        // Flip a byte inside the third segment's value region.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.write_at(&[0xFF], HEADER_LEN + 40 * 8).unwrap();
        let col = SegmentedColumn::open(&path, 2).unwrap();
        assert!(col.get(0).is_ok(), "untouched segment still reads");
        let err = col.get(40).unwrap_err();
        assert_eq!(err.source.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, [0x55u8; 64]).unwrap();
        let err = SegmentedColumn::open(&path, 2).unwrap_err();
        assert_eq!(err.source.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_fails_loudly() {
        let path = tmp("truncated");
        let col = SegmentedColumn::create_with(&path, 100, 16, 2, |i| i as Val).unwrap();
        drop(col);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(HEADER_LEN + 50 * 8).unwrap();
        let col = SegmentedColumn::open(&path, 2).unwrap();
        assert!(col.get(99).is_err(), "reads past the truncation fail");
        std::fs::remove_file(&path).ok();
    }
}
