//! Base column (BAT) and table representations.
//!
//! MonetDB stores a relation of `k` attributes as `k` Binary Association
//! Tables of `(key, attr)` pairs, where the key is a dense ascending
//! sequence kept *virtual* (non-materialized). We mirror that: a
//! [`Column`] is just the attr vector; the key of position `i` is `i`.
//!
//! A column's tail lives in one of two storage tiers:
//!
//! * **Resident** — a plain `Vec<Val>` in RAM (the default; every
//!   operator works on it, and [`Column::values`] exposes the raw slice);
//! * **Segmented** — a fixed-size-segment file read on demand through a
//!   bounded segment cache ([`crate::storage::SegmentedColumn`]), plus a
//!   small resident *overlay* holding rows appended after load (the
//!   update path stays infallible for freshly inserted keys).
//!
//! Random access on a segmented column can fail (disk I/O, checksum
//! mismatch); query paths use the fallible [`Column::try_get`] /
//! [`Column::try_gather`] / [`Column::try_for_each_segment`] and surface
//! a [`StorageError`]. The infallible [`Column::get`] stays the hot-path
//! API for resident columns and panics only on an actual storage failure.

use crate::storage::{SegmentedColumn, StorageError};
use crate::types::{RowId, Val};
use std::sync::Arc;

/// Storage tier behind a [`Column`].
#[derive(Debug, Clone)]
enum ColumnData {
    /// Fully in RAM.
    Resident(Vec<Val>),
    /// File-backed base values plus a resident overlay of appended rows:
    /// key `k` maps to the file when `k < seg.len()` and to
    /// `overlay[k - seg.len()]` otherwise.
    Segmented {
        seg: SegmentedColumn,
        overlay: Vec<Val>,
    },
}

/// A single base column. Position `i` holds the attribute value of the
/// relational tuple with (virtual) key `i`.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
}

impl Default for Column {
    fn default() -> Self {
        Column {
            data: ColumnData::Resident(Vec::new()),
        }
    }
}

impl Column {
    /// Build a resident column from raw values.
    pub fn new(values: Vec<Val>) -> Self {
        Column {
            data: ColumnData::Resident(values),
        }
    }

    /// Build a file-backed column over a segmented file.
    pub fn segmented(seg: SegmentedColumn) -> Self {
        Column {
            data: ColumnData::Segmented {
                seg,
                overlay: Vec::new(),
            },
        }
    }

    /// `true` when the tail is fully in RAM.
    pub fn is_resident(&self) -> bool {
        matches!(self.data, ColumnData::Resident(_))
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Resident(v) => v.len(),
            ColumnData::Segmented { seg, overlay } => seg.len() + overlay.len(),
        }
    }

    /// `true` when the column holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at position `key`.
    ///
    /// # Panics
    /// On a segmented column, if the segment read fails (I/O error or
    /// checksum mismatch). Query execution paths use [`Column::try_get`]
    /// and surface a typed error instead; this infallible accessor is for
    /// resident columns and singleton lookups.
    #[inline(always)]
    pub fn get(&self, key: RowId) -> Val {
        match &self.data {
            ColumnData::Resident(v) => v[key as usize],
            ColumnData::Segmented { .. } => self
                .try_get(key)
                // INVARIANT: the documented contract of this infallible
                // accessor — query paths use `try_get`; a failed segment
                // read here is unrecoverable corruption, not control flow.
                .unwrap_or_else(|e| panic!("segmented column read failed: {e}")),
        }
    }

    /// Value at position `key`, surfacing storage failures.
    #[inline]
    pub fn try_get(&self, key: RowId) -> Result<Val, StorageError> {
        match &self.data {
            ColumnData::Resident(v) => Ok(v[key as usize]),
            ColumnData::Segmented { seg, overlay } => {
                let k = key as usize;
                if k < seg.len() {
                    seg.get(key)
                } else {
                    Ok(overlay[k - seg.len()])
                }
            }
        }
    }

    /// Gather the values of `keys` in order, feeding each to `consume`.
    /// On a segmented column the last touched segment is memoized, so
    /// gathers with locality pay one cache probe per segment switch
    /// instead of one per key.
    pub fn try_gather(
        &self,
        keys: impl IntoIterator<Item = RowId>,
        mut consume: impl FnMut(Val),
    ) -> Result<(), StorageError> {
        match &self.data {
            ColumnData::Resident(v) => {
                for k in keys {
                    consume(v[k as usize]);
                }
                Ok(())
            }
            ColumnData::Segmented { seg, overlay } => {
                let base = seg.len();
                let mut memo: Option<(u32, Arc<Vec<Val>>)> = None;
                for k in keys {
                    let ku = k as usize;
                    let v = if ku < base {
                        seg.get_with_memo(k, &mut memo)?
                    } else {
                        overlay[ku - base]
                    };
                    consume(v);
                }
                Ok(())
            }
        }
    }

    /// Stream the whole tail in key order as `(first_key, values)` runs.
    /// Resident columns yield one run; segmented columns yield one run
    /// per segment (reads bypass the segment cache) plus the overlay.
    pub fn try_for_each_segment(
        &self,
        mut f: impl FnMut(usize, &[Val]),
    ) -> Result<(), StorageError> {
        match &self.data {
            ColumnData::Resident(v) => {
                f(0, v);
                Ok(())
            }
            ColumnData::Segmented { seg, overlay } => {
                seg.for_each_segment(&mut f)?;
                if !overlay.is_empty() {
                    f(seg.len(), overlay);
                }
                Ok(())
            }
        }
    }

    /// Raw value slice (the BAT tail).
    ///
    /// # Panics
    /// On a segmented column — a file-backed tail has no contiguous
    /// resident slice. Operators that need raw slices (parallel scans,
    /// radix clustering, shard partitioning) require resident columns.
    pub fn values(&self) -> &[Val] {
        match &self.data {
            ColumnData::Resident(v) => v,
            ColumnData::Segmented { .. } => {
                // INVARIANT: documented panic — slice-requiring operators
                // are only dispatched on resident columns (see `# Panics`).
                panic!("values(): segmented column has no resident slice; this operator requires resident storage")
            }
        }
    }

    /// Bytes currently resident in RAM for this column (full tail for
    /// resident columns; cached segments + overlay for segmented ones).
    pub fn resident_bytes(&self) -> usize {
        match &self.data {
            ColumnData::Resident(v) => v.len() * 8,
            ColumnData::Segmented { seg, overlay } => seg.resident_bytes() + overlay.len() * 8,
        }
    }

    /// Append a value (used by the update path); returns its key.
    /// Appends to a segmented column land in the resident overlay.
    pub fn push(&mut self, v: Val) -> RowId {
        match &mut self.data {
            ColumnData::Resident(vals) => {
                vals.push(v);
                (vals.len() - 1) as RowId
            }
            ColumnData::Segmented { seg, overlay } => {
                overlay.push(v);
                (seg.len() + overlay.len() - 1) as RowId
            }
        }
    }

    /// Iterate `(key, value)` pairs, materializing the virtual key.
    ///
    /// # Panics
    /// On a segmented column (see [`Column::values`]); use
    /// [`Column::try_for_each_segment`] for tier-agnostic scans.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (RowId, Val)> + '_ {
        self.values()
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as RowId, v))
    }
}

/// A relational table as a set of equally long, tuple-order-aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
    len: usize,
}

impl Table {
    /// Create an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Add a named column; all columns must have equal length.
    ///
    /// # Panics
    /// If the column length differs from existing columns, or the name is
    /// already taken.
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> usize {
        let name = name.into();
        assert!(
            self.columns.is_empty() || col.len() == self.len,
            "column {name} has length {} but table has {}",
            col.len(),
            self.len
        );
        assert!(!self.names.contains(&name), "duplicate column name {name}");
        if self.columns.is_empty() {
            self.len = col.len();
        }
        self.names.push(name);
        self.columns.push(col);
        self.columns.len() - 1
    }

    /// Number of tuples.
    pub fn num_rows(&self) -> usize {
        self.len
    }

    /// Number of attributes.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Index of a named column.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Column names in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// `true` when every column tail is fully in RAM.
    pub fn is_resident(&self) -> bool {
        self.columns.iter().all(Column::is_resident)
    }

    /// Bytes currently resident in RAM across all columns.
    pub fn resident_bytes(&self) -> usize {
        self.columns.iter().map(Column::resident_bytes).sum()
    }

    /// Append one tuple given values in column order (update path).
    ///
    /// # Panics
    /// If `row.len()` differs from the number of columns.
    pub fn append_row(&mut self, row: &[Val]) -> RowId {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (c, &v) in self.columns.iter_mut().zip(row) {
            c.push(v);
        }
        self.len += 1;
        (self.len - 1) as RowId
    }

    /// Materialize one tuple by key.
    pub fn row(&self, key: RowId) -> Vec<Val> {
        self.columns.iter().map(|c| c.get(key)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SegmentedColumn;
    use std::path::PathBuf;

    fn sample() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![1, 2, 3]));
        t.add_column("b", Column::new(vec![10, 20, 30]));
        t
    }

    #[test]
    fn construction_and_lookup() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_by_name("b").unwrap().get(1), 20);
        assert_eq!(t.index_of("a"), Some(0));
        assert_eq!(t.index_of("zzz"), None);
        assert_eq!(t.row(2), vec![3, 30]);
    }

    #[test]
    fn append_row_extends_all_columns() {
        let mut t = sample();
        let k = t.append_row(&[4, 40]);
        assert_eq!(k, 3);
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.column(0).get(3), 4);
        assert_eq!(t.column(1).get(3), 40);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_column_length_panics() {
        let mut t = sample();
        t.add_column("c", Column::new(vec![1]));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut t = sample();
        t.add_column("a", Column::new(vec![0, 0, 0]));
    }

    #[test]
    fn iter_pairs_materializes_keys() {
        let c = Column::new(vec![7, 8]);
        let pairs: Vec<_> = c.iter_pairs().collect();
        assert_eq!(pairs, vec![(0, 7), (1, 8)]);
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("crackdb-column-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn segmented_column_reads_and_overlay() {
        let path = tmp("segcol");
        let seg = SegmentedColumn::create_with(&path, 100, 16, 2, |i| i as Val * 2).unwrap();
        let mut c = Column::segmented(seg);
        assert!(!c.is_resident());
        assert_eq!(c.len(), 100);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.try_get(99).unwrap(), 198);
        // Appends land in the overlay and read back infallibly.
        assert_eq!(c.push(777), 100);
        assert_eq!(c.len(), 101);
        assert_eq!(c.try_get(100).unwrap(), 777);
        // Gather mixes file-backed and overlay keys.
        let mut got = Vec::new();
        c.try_gather([5u32, 50, 100, 0], |v| got.push(v)).unwrap();
        assert_eq!(got, vec![10, 100, 777, 0]);
        // Full scan sees file segments then the overlay.
        let mut all = Vec::new();
        c.try_for_each_segment(|start, vals| {
            assert_eq!(start, all.len());
            all.extend_from_slice(vals);
        })
        .unwrap();
        assert_eq!(all.len(), 101);
        assert_eq!(all[100], 777);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "resident")]
    fn segmented_values_panics() {
        let path = tmp("segvals");
        let seg = SegmentedColumn::create_with(&path, 10, 4, 2, |i| i as Val).unwrap();
        let c = Column::segmented(seg);
        let _ = std::fs::remove_file(&path);
        let _ = c.values();
    }
}
