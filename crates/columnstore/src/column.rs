//! Base column (BAT) and table representations.
//!
//! MonetDB stores a relation of `k` attributes as `k` Binary Association
//! Tables of `(key, attr)` pairs, where the key is a dense ascending
//! sequence kept *virtual* (non-materialized). We mirror that: a
//! [`Column`] is just the attr vector; the key of position `i` is `i`.

use crate::types::{RowId, Val};

/// A single base column. Position `i` holds the attribute value of the
/// relational tuple with (virtual) key `i`.
#[derive(Debug, Clone, Default)]
pub struct Column {
    values: Vec<Val>,
}

impl Column {
    /// Build a column from raw values.
    pub fn new(values: Vec<Val>) -> Self {
        Column { values }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the column holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `key`.
    #[inline(always)]
    pub fn get(&self, key: RowId) -> Val {
        self.values[key as usize]
    }

    /// Raw value slice (the BAT tail).
    pub fn values(&self) -> &[Val] {
        &self.values
    }

    /// Append a value (used by the update path); returns its key.
    pub fn push(&mut self, v: Val) -> RowId {
        self.values.push(v);
        (self.values.len() - 1) as RowId
    }

    /// Iterate `(key, value)` pairs, materializing the virtual key.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (RowId, Val)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as RowId, v))
    }
}

/// A relational table as a set of equally long, tuple-order-aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
    len: usize,
}

impl Table {
    /// Create an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Add a named column; all columns must have equal length.
    ///
    /// # Panics
    /// If the column length differs from existing columns, or the name is
    /// already taken.
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> usize {
        let name = name.into();
        assert!(
            self.columns.is_empty() || col.len() == self.len,
            "column {name} has length {} but table has {}",
            col.len(),
            self.len
        );
        assert!(!self.names.contains(&name), "duplicate column name {name}");
        if self.columns.is_empty() {
            self.len = col.len();
        }
        self.names.push(name);
        self.columns.push(col);
        self.columns.len() - 1
    }

    /// Number of tuples.
    pub fn num_rows(&self) -> usize {
        self.len
    }

    /// Number of attributes.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Index of a named column.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Column names in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Append one tuple given values in column order (update path).
    ///
    /// # Panics
    /// If `row.len()` differs from the number of columns.
    pub fn append_row(&mut self, row: &[Val]) -> RowId {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (c, &v) in self.columns.iter_mut().zip(row) {
            c.push(v);
        }
        self.len += 1;
        (self.len - 1) as RowId
    }

    /// Materialize one tuple by key.
    pub fn row(&self, key: RowId) -> Vec<Val> {
        self.columns.iter().map(|c| c.get(key)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![1, 2, 3]));
        t.add_column("b", Column::new(vec![10, 20, 30]));
        t
    }

    #[test]
    fn construction_and_lookup() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_by_name("b").unwrap().get(1), 20);
        assert_eq!(t.index_of("a"), Some(0));
        assert_eq!(t.index_of("zzz"), None);
        assert_eq!(t.row(2), vec![3, 30]);
    }

    #[test]
    fn append_row_extends_all_columns() {
        let mut t = sample();
        let k = t.append_row(&[4, 40]);
        assert_eq!(k, 3);
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.column(0).get(3), 4);
        assert_eq!(t.column(1).get(3), 40);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_column_length_panics() {
        let mut t = sample();
        t.add_column("c", Column::new(vec![1]));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut t = sample();
        t.add_column("a", Column::new(vec![0, 0, 0]));
    }

    #[test]
    fn iter_pairs_materializes_keys() {
        let c = Column::new(vec![7, 8]);
        let pairs: Vec<_> = c.iter_pairs().collect();
        assert_eq!(pairs, vec![(0, 7), (1, 8)]);
    }
}
