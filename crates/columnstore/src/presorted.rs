//! The "ultimate physical design" baseline: a presorted copy of the table.
//!
//! The paper's strongest competitor keeps, for each restriction attribute
//! `A`, a full copy of the relation sorted on `A`. Selections become binary
//! searches; every projected attribute is already positionally aligned with
//! the selection result, so tuple reconstruction is a contiguous slice read.
//! The price is the heavy presorting step (measured by
//! [`PresortedTable::build`]'s wall time in the benchmarks), plus the
//! inability to absorb updates cheaply — exactly the trade-off sideways
//! cracking removes.

use crate::column::Table;
use crate::ops::sort::{apply_permutation, sort_permutation};
use crate::types::{RangePred, RowId, Val};

/// A copy of a table fully sorted on one attribute, with the original tuple
/// keys materialized so results can be mapped back when needed.
#[derive(Debug, Clone)]
pub struct PresortedTable {
    /// Index (in the source table) of the sort attribute.
    sort_col: usize,
    /// All columns re-ordered by the sort permutation.
    columns: Vec<Vec<Val>>,
    /// `orig_keys[i]` is the original tuple key now living at position `i`.
    orig_keys: Vec<RowId>,
}

impl PresortedTable {
    /// Build the presorted copy — the expensive preparation step. Sorts on
    /// `sort_col` and applies the permutation to every column.
    pub fn build(table: &Table, sort_col: usize) -> Self {
        let perm = sort_permutation(table.column(sort_col).values());
        let columns = (0..table.num_columns())
            .map(|c| apply_permutation(table.column(c).values(), &perm))
            .collect();
        PresortedTable {
            sort_col,
            columns,
            orig_keys: perm,
        }
    }

    /// Build a copy sorted on `sort_col` with ties broken by `sub_col`
    /// (the paper sub-sorts TPC-H copies on group-by/order-by columns).
    pub fn build_with_subsort(table: &Table, sort_col: usize, sub_col: usize) -> Self {
        let primary = table.column(sort_col).values();
        let secondary = table.column(sub_col).values();
        let mut perm: Vec<RowId> = (0..primary.len() as RowId).collect();
        perm.sort_by_key(|&i| (primary[i as usize], secondary[i as usize]));
        let columns = (0..table.num_columns())
            .map(|c| apply_permutation(table.column(c).values(), &perm))
            .collect();
        PresortedTable {
            sort_col,
            columns,
            orig_keys: perm,
        }
    }

    /// The attribute this copy is sorted on.
    pub fn sort_col(&self) -> usize {
        self.sort_col
    }

    /// Number of tuples.
    pub fn num_rows(&self) -> usize {
        self.orig_keys.len()
    }

    /// Binary-search selection on the sort attribute: returns the
    /// contiguous position range `[start, end)` of qualifying tuples.
    pub fn select_range(&self, pred: &RangePred) -> (usize, usize) {
        let vals = &self.columns[self.sort_col];
        let start = match pred.lo {
            None => 0,
            Some(b) => {
                if b.inclusive {
                    vals.partition_point(|&v| v < b.value)
                } else {
                    vals.partition_point(|&v| v <= b.value)
                }
            }
        };
        let end = match pred.hi {
            None => vals.len(),
            Some(b) => {
                if b.inclusive {
                    vals.partition_point(|&v| v <= b.value)
                } else {
                    vals.partition_point(|&v| v < b.value)
                }
            }
        };
        (start, end.max(start))
    }

    /// Aligned tuple reconstruction: project column `col` over a position
    /// range produced by [`Self::select_range`] — a contiguous slice, the
    /// best-case access pattern.
    pub fn project(&self, col: usize, range: (usize, usize)) -> &[Val] {
        &self.columns[col][range.0..range.1]
    }

    /// Original tuple keys for a selected range (needed when a downstream
    /// operator must join back to other tables).
    pub fn keys(&self, range: (usize, usize)) -> &[RowId] {
        &self.orig_keys[range.0..range.1]
    }

    /// Values of `col` at arbitrary positions of the *sorted* copy.
    pub fn column(&self, col: usize) -> &[Val] {
        &self.columns[col]
    }

    /// Insert a tuple (values in column order, original key `key`),
    /// keeping the copy sorted: a binary search finds the slot, then
    /// every column shifts — O(n) per copy, the §3.6 Exp6 maintenance
    /// cost the paper dismisses presorting for. Kept correct here so the
    /// presorted baseline can run the same update streams as the
    /// adaptive engines.
    pub fn insert_row(&mut self, row: &[Val], key: RowId) {
        let v = row[self.sort_col];
        let pos = self.columns[self.sort_col].partition_point(|&x| x <= v);
        for (c, col) in self.columns.iter_mut().enumerate() {
            col.insert(pos, row[c]);
        }
        self.orig_keys.insert(pos, key);
    }

    /// Remove the tuple with original key `key` (O(n) scan + shift per
    /// copy). Returns `false` when the key is not present.
    pub fn delete_key(&mut self, key: RowId) -> bool {
        let Some(pos) = self.orig_keys.iter().position(|&k| k == key) else {
            return false;
        };
        for col in &mut self.columns {
            col.remove(pos);
        }
        self.orig_keys.remove(pos);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, Table};

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![12, 3, 5, 9, 15, 22, 7]));
        t.add_column("b", Column::new(vec![70, 10, 20, 30, 50, 60, 25]));
        t
    }

    #[test]
    fn build_sorts_all_columns() {
        let p = PresortedTable::build(&table(), 0);
        assert_eq!(p.column(0), &[3, 5, 7, 9, 12, 15, 22]);
        assert_eq!(p.column(1), &[10, 20, 25, 30, 70, 50, 60]);
    }

    #[test]
    fn binary_search_select() {
        let p = PresortedTable::build(&table(), 0);
        let r = p.select_range(&RangePred::open(5, 15));
        assert_eq!(p.project(0, r), &[7, 9, 12]);
        assert_eq!(p.project(1, r), &[25, 30, 70]);
    }

    #[test]
    fn keys_map_back_to_original() {
        let t = table();
        let p = PresortedTable::build(&t, 0);
        let r = p.select_range(&RangePred::open(5, 15));
        for (&k, &v) in p.keys(r).iter().zip(p.project(0, r)) {
            assert_eq!(t.column(0).get(k), v);
        }
    }

    #[test]
    fn inclusive_bounds() {
        let p = PresortedTable::build(&table(), 0);
        let r = p.select_range(&RangePred::closed(5, 15));
        assert_eq!(p.project(0, r), &[5, 7, 9, 12, 15]);
    }

    #[test]
    fn unbounded_sides() {
        let p = PresortedTable::build(&table(), 0);
        let all = p.select_range(&RangePred::all());
        assert_eq!(all, (0, 7));
    }

    #[test]
    fn empty_result() {
        let p = PresortedTable::build(&table(), 0);
        let r = p.select_range(&RangePred::open(15, 16));
        assert_eq!(r.0, r.1);
    }

    #[test]
    fn insert_and_delete_keep_the_copy_sorted() {
        let t = table();
        let mut p = PresortedTable::build(&t, 0);
        p.insert_row(&[8, 28], 7);
        assert_eq!(p.column(0), &[3, 5, 7, 8, 9, 12, 15, 22]);
        assert_eq!(p.column(1), &[10, 20, 25, 28, 30, 70, 50, 60]);
        assert!(p.delete_key(0)); // original key 0: a=12, b=70
        assert_eq!(p.column(0), &[3, 5, 7, 8, 9, 15, 22]);
        assert!(!p.delete_key(0), "already removed");
        // Keys still map back for the surviving tuples.
        let r = p.select_range(&RangePred::closed(8, 9));
        assert_eq!(p.keys(r), &[7, 3]);
    }

    #[test]
    fn subsort_breaks_ties() {
        let mut t = Table::new();
        t.add_column("a", Column::new(vec![1, 1, 0]));
        t.add_column("b", Column::new(vec![9, 2, 5]));
        let p = PresortedTable::build_with_subsort(&t, 0, 1);
        assert_eq!(p.column(0), &[0, 1, 1]);
        assert_eq!(p.column(1), &[5, 2, 9]);
    }
}
