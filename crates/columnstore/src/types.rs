//! Fundamental value and predicate types shared across the workspace.
//!
//! The paper's experiments use integer attributes throughout; we fix the
//! attribute value type to [`Val`] (`i64`) and tuple identifiers to
//! [`RowId`] (`u32`, sufficient for the paper's 10^7-tuple tables while
//! halving the memory footprint of cracker maps).

/// Attribute value type. The paper's tables store random integers.
pub type Val = i64;

/// Tuple identifier (position in a base column). Dense and ascending for
/// base BATs, mirroring MonetDB's virtual OID column.
pub type RowId = u32;

/// One side of a range restriction: the boundary value and whether the
/// boundary itself qualifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bound {
    /// Boundary value.
    pub value: Val,
    /// `true` for `<=`/`>=` semantics, `false` for strict `<`/`>`.
    pub inclusive: bool,
}

impl Bound {
    /// Inclusive boundary (`value` itself qualifies).
    pub fn inclusive(value: Val) -> Self {
        Bound {
            value,
            inclusive: true,
        }
    }

    /// Exclusive boundary (`value` itself does not qualify).
    pub fn exclusive(value: Val) -> Self {
        Bound {
            value,
            inclusive: false,
        }
    }
}

/// A (possibly half-open) range restriction `lo < A < hi` as used by every
/// selection operator in the paper (`select(A, v1, v2)`).
///
/// Either side may be absent, giving one-sided predicates; both absent
/// selects everything. Point queries are expressed with two inclusive
/// bounds on the same value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RangePred {
    /// Lower bound, if any.
    pub lo: Option<Bound>,
    /// Upper bound, if any.
    pub hi: Option<Bound>,
}

impl RangePred {
    /// `lo < A < hi` (both exclusive), the paper's canonical form.
    pub fn open(lo: Val, hi: Val) -> Self {
        RangePred {
            lo: Some(Bound::exclusive(lo)),
            hi: Some(Bound::exclusive(hi)),
        }
    }

    /// `lo <= A < hi` (half-open), convenient for partition arithmetic.
    pub fn half_open(lo: Val, hi: Val) -> Self {
        RangePred {
            lo: Some(Bound::inclusive(lo)),
            hi: Some(Bound::exclusive(hi)),
        }
    }

    /// `lo <= A <= hi` (both inclusive).
    pub fn closed(lo: Val, hi: Val) -> Self {
        RangePred {
            lo: Some(Bound::inclusive(lo)),
            hi: Some(Bound::inclusive(hi)),
        }
    }

    /// Point restriction `A == v`.
    pub fn point(v: Val) -> Self {
        Self::closed(v, v)
    }

    /// One-sided `A < hi` / `A <= hi`.
    pub fn less(hi: Bound) -> Self {
        RangePred {
            lo: None,
            hi: Some(hi),
        }
    }

    /// One-sided `A > lo` / `A >= lo`.
    pub fn greater(lo: Bound) -> Self {
        RangePred {
            lo: Some(lo),
            hi: None,
        }
    }

    /// Unrestricted predicate (matches every value).
    pub fn all() -> Self {
        RangePred { lo: None, hi: None }
    }

    /// Does `v` satisfy the predicate?
    #[inline(always)]
    pub fn matches(&self, v: Val) -> bool {
        let lo_ok = match self.lo {
            None => true,
            Some(b) => {
                if b.inclusive {
                    v >= b.value
                } else {
                    v > b.value
                }
            }
        };
        let hi_ok = match self.hi {
            None => true,
            Some(b) => {
                if b.inclusive {
                    v <= b.value
                } else {
                    v < b.value
                }
            }
        };
        lo_ok && hi_ok
    }

    /// `true` if no value can satisfy the predicate.
    pub fn is_empty_range(&self) -> bool {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) => {
                if lo.value > hi.value {
                    true
                } else if lo.value == hi.value {
                    !(lo.inclusive && hi.inclusive)
                } else {
                    false
                }
            }
            _ => false,
        }
    }
}

/// Aggregate functions used by the paper's workloads (`max(...)` in q1–q3,
/// sums and averages in TPC-H).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Maximum value.
    Max,
    /// Minimum value.
    Min,
    /// Sum of values.
    Sum,
    /// Number of values.
    Count,
    /// Arithmetic mean, reported as `(sum, count)` scaled by caller.
    Avg,
}

/// Result of an aggregate computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggResult {
    /// Integer-valued aggregate (max/min/sum/count). `None` on empty input
    /// for max/min.
    Int(Option<Val>),
    /// Average as a float. `None` on empty input.
    Float(Option<f64>),
}

impl AggResult {
    /// Unwrap an integer aggregate, panicking on type mismatch.
    pub fn as_int(&self) -> Option<Val> {
        match self {
            AggResult::Int(v) => *v,
            // INVARIANT: documented type-mismatch panic — callers match
            // the AggFunc they passed (only Avg produces Float).
            AggResult::Float(_) => panic!("aggregate is a float"),
        }
    }
}

/// Compute `func` over a value iterator.
pub fn aggregate<I: IntoIterator<Item = Val>>(func: AggFunc, values: I) -> AggResult {
    let mut count: i64 = 0;
    let mut sum: i64 = 0;
    let mut min: Option<Val> = None;
    let mut max: Option<Val> = None;
    for v in values {
        count += 1;
        sum = sum.wrapping_add(v);
        min = Some(min.map_or(v, |m| m.min(v)));
        max = Some(max.map_or(v, |m| m.max(v)));
    }
    match func {
        AggFunc::Max => AggResult::Int(max),
        AggFunc::Min => AggResult::Int(min),
        AggFunc::Sum => AggResult::Int(Some(sum)),
        AggFunc::Count => AggResult::Int(Some(count)),
        AggFunc::Avg => AggResult::Float(if count == 0 {
            None
        } else {
            Some(sum as f64 / count as f64)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_range_matches() {
        let p = RangePred::open(10, 15);
        assert!(!p.matches(10));
        assert!(p.matches(11));
        assert!(p.matches(14));
        assert!(!p.matches(15));
    }

    #[test]
    fn closed_and_half_open() {
        let c = RangePred::closed(5, 8);
        assert!(c.matches(5) && c.matches(8) && !c.matches(9) && !c.matches(4));
        let h = RangePred::half_open(5, 8);
        assert!(h.matches(5) && h.matches(7) && !h.matches(8));
    }

    #[test]
    fn point_predicate() {
        let p = RangePred::point(42);
        assert!(p.matches(42));
        assert!(!p.matches(41) && !p.matches(43));
        assert!(!p.is_empty_range());
    }

    #[test]
    fn one_sided() {
        let lt = RangePred::less(Bound::exclusive(3));
        assert!(lt.matches(i64::MIN) && lt.matches(2) && !lt.matches(3));
        let ge = RangePred::greater(Bound::inclusive(3));
        assert!(ge.matches(3) && ge.matches(i64::MAX) && !ge.matches(2));
    }

    #[test]
    fn empty_ranges() {
        assert!(RangePred::open(5, 5).is_empty_range());
        assert!(!RangePred::open(5, 6).is_empty_range());
        // (5,6) open contains nothing over the integers but we only detect
        // syntactic emptiness; matches() still answers correctly.
        assert!(!RangePred::open(5, 6).matches(5));
        assert!(!RangePred::open(5, 6).matches(6));
        assert!(RangePred::closed(7, 5).is_empty_range());
    }

    #[test]
    fn aggregates() {
        let vals = [3i64, 1, 4, 1, 5];
        assert_eq!(aggregate(AggFunc::Max, vals).as_int(), Some(5));
        assert_eq!(aggregate(AggFunc::Min, vals).as_int(), Some(1));
        assert_eq!(aggregate(AggFunc::Sum, vals).as_int(), Some(14));
        assert_eq!(aggregate(AggFunc::Count, vals).as_int(), Some(5));
        match aggregate(AggFunc::Avg, vals) {
            AggResult::Float(Some(f)) => assert!((f - 2.8).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregates_empty() {
        assert_eq!(aggregate(AggFunc::Max, []).as_int(), None);
        assert_eq!(aggregate(AggFunc::Count, []).as_int(), Some(0));
        assert_eq!(aggregate(AggFunc::Avg, []), AggResult::Float(None));
    }
}
