//! Exploratory analytics over a sensor-readings table — the unpredictable
//! workload the paper's introduction motivates: an analyst slices a large
//! table by ad-hoc time windows and value filters, with no idle time to
//! build indexes and no workload to tune for in advance.
//!
//! The example runs the same exploration session under plain scans,
//! presorted copies (paying the preparation upfront) and sideways
//! cracking, printing how per-query cost evolves.
//!
//! Run with `cargo run --release --example sensor_exploration`.

use crackdb::columnstore::{AggFunc, Column, RangePred, Table};
use crackdb::engine::{Engine, PlainEngine, PresortedEngine, SelectQuery, SidewaysEngine};
use crackdb_rng::rngs::StdRng;
use crackdb_rng::{Rng, SeedableRng};
use std::time::Instant;

const N: usize = 500_000;

fn sensor_table(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new();
    // timestamp: seconds over ~1 week; temperature: milli-degrees;
    // humidity: basis points; device: id.
    t.add_column(
        "timestamp",
        Column::new((0..N).map(|_| rng.gen_range(0..604_800)).collect()),
    );
    t.add_column(
        "temperature",
        Column::new((0..N).map(|_| rng.gen_range(-10_000..40_000)).collect()),
    );
    t.add_column(
        "humidity",
        Column::new((0..N).map(|_| rng.gen_range(0..10_000)).collect()),
    );
    t.add_column(
        "device",
        Column::new((0..N).map(|_| rng.gen_range(0..500)).collect()),
    );
    t
}

fn session(seed: u64) -> Vec<SelectQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..60)
        .map(|i| {
            // The analyst drills into ever-narrower time windows, and
            // every third query adds a temperature filter.
            let width = 604_800 / (1 + i / 10) / 4;
            let start = rng.gen_range(0..604_800 - width);
            let mut preds = vec![(0usize, RangePred::open(start, start + width))];
            if i % 3 == 2 {
                let t0 = rng.gen_range(-10_000..30_000);
                preds.push((1, RangePred::open(t0, t0 + 8_000)));
            }
            SelectQuery::aggregate(
                preds,
                vec![(1, AggFunc::Avg), (2, AggFunc::Max), (3, AggFunc::Count)],
            )
        })
        .collect()
}

fn main() {
    let table = sensor_table(7);
    let queries = session(8);

    println!("Exploration session: 60 ad-hoc queries over {N} sensor readings\n");
    let mut engines: Vec<(Box<dyn Engine>, f64)> = vec![
        (Box::new(PlainEngine::new(table.clone())), 0.0),
        (
            Box::new(SidewaysEngine::new(table.clone(), (0, 604_800))),
            0.0,
        ),
        {
            let t0 = Instant::now();
            let e = PresortedEngine::new(table.clone(), &[0, 1]);
            let prep = t0.elapsed().as_secs_f64() * 1e3;
            (Box::new(e), prep)
        },
    ];

    println!(
        "{:<22}{:>12}{:>12}{:>12}{:>14}",
        "system", "first_ms", "q10_ms", "q60_ms", "total_ms"
    );
    for (engine, prep) in engines.iter_mut() {
        let mut times = Vec::new();
        let mut reference: Option<Vec<Option<i64>>> = None;
        for q in &queries {
            let t0 = Instant::now();
            let out = engine.select(q);
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            if reference.is_none() {
                reference = Some(out.aggs);
            }
        }
        let total: f64 = times.iter().sum::<f64>() + *prep;
        println!(
            "{:<22}{:>12.3}{:>12.3}{:>12.3}{:>14.3}{}",
            engine.name(),
            times[0],
            times[9],
            times[59],
            total,
            if *prep > 0.0 {
                format!("   (includes {prep:.1} ms presorting)")
            } else {
                String::new()
            }
        );
    }
    println!("\nSideways cracking starts near the plain scan cost and self-organizes");
    println!("towards presorted performance — without the presorting bill or the");
    println!("need to predict which attributes the analyst will slice on.");
}
