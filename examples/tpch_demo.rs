//! TPC-H under all five physical designs (§5): generate a small TPC-H
//! instance and run a few of the paper's queries under every system,
//! showing that the answers agree and how the costs compare.
//!
//! Run with `cargo run --release --example tpch_demo`.

use crackdb::engine::tpch::queries::run;
use crackdb::engine::tpch::{Mode, TpchExecutor};
use crackdb::workloads::tpch::{TpchData, TpchParams};
use std::time::Instant;

fn main() {
    let sf = 0.02;
    println!("Generating TPC-H at SF {sf}...");
    let data = TpchData::generate(sf, 42);
    println!(
        "lineitem: {} rows, orders: {} rows\n",
        data.lineitem.num_rows(),
        data.orders.num_rows()
    );

    let mut params = TpchParams::new(7);
    let runs = [
        (6u32, params.q6()),
        (6, params.q6()),
        (14, params.q14()),
        (14, params.q14()),
        (19, params.q19()),
        (19, params.q19()),
    ];

    println!(
        "{:<22}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>12}",
        "system", "Q6a", "Q6b", "Q14a", "Q14b", "Q19a", "Q19b", "prep_ms"
    );
    let mut digests: Option<Vec<i64>> = None;
    for (mode, label) in [
        (Mode::Plain, "MonetDB"),
        (Mode::Presorted, "MonetDB presorted"),
        (Mode::SelCrack, "Selection Cracking"),
        (Mode::Sideways, "Sideways Cracking"),
        (Mode::RowStore, "MySQL presorted"),
    ] {
        let mut exec = TpchExecutor::new(data.clone(), mode);
        let mut times = Vec::new();
        let mut ds = Vec::new();
        for &(q, prm) in &runs {
            let t0 = Instant::now();
            ds.push(run(&mut exec, q, prm));
            times.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        match &digests {
            None => digests = Some(ds),
            Some(reference) => assert_eq!(&ds, reference, "{label} returned different answers"),
        }
        println!(
            "{:<22}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>12.1}",
            label,
            times[0],
            times[1],
            times[2],
            times[3],
            times[4],
            times[5],
            exec.prep_cost.as_secs_f64() * 1e3
        );
    }
    println!("\nAll systems return identical answers. Sideways cracking pays a first-run");
    println!("map-creation cost, then converges towards presorted speed — with zero");
    println!("preparation cost and no workload knowledge.");
}
