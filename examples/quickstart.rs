//! Quickstart: the paper's Figure 1 example, step by step.
//!
//! Run with `cargo run --release --example quickstart`.

use crackdb::columnstore::{AggFunc, Column, RangePred, Table};
use crackdb::engine::{Engine, SelectQuery, ShardedEngine, SidewaysEngine};

fn main() {
    // The example relation R(A, B) of the paper's Figure 1.
    let a = vec![12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16];
    let b: Vec<i64> = (1..=13).collect();
    let mut table = Table::new();
    table.add_column("A", Column::new(a));
    table.add_column("B", Column::new(b));

    let mut engine = SidewaysEngine::new(table.clone(), (0, 30));

    // Query 1: select B from R where 10 < A < 15.
    // The first query creates the cracker map M_AB and cracks it into
    // three pieces; the qualifying B values come out of the middle piece
    // without any join-like tuple reconstruction.
    let q1 = SelectQuery {
        preds: vec![(0, RangePred::open(10, 15))],
        disjunctive: false,
        aggs: vec![],
        projs: vec![1],
    };
    let out = engine.select(&q1);
    println!(
        "Q1  select B where 10 < A < 15  -> B = {:?}",
        out.proj_values[0]
    );

    // Query 2: select B from R where 5 <= A < 17. The middle piece from
    // Q1 is already known to qualify; only the outer pieces are cracked.
    let q2 = SelectQuery {
        preds: vec![(0, RangePred::half_open(5, 17))],
        disjunctive: false,
        aggs: vec![],
        projs: vec![1],
    };
    let out = engine.select(&q2);
    let mut vals = out.proj_values[0].clone();
    vals.sort_unstable();
    println!("Q2  select B where 5 <= A < 17  -> B = {vals:?}");

    // Aggregations ride on the same maps.
    let q3 = SelectQuery::aggregate(
        vec![(0, RangePred::open(2, 12))],
        vec![(1, AggFunc::Max), (1, AggFunc::Count)],
    );
    let out = engine.select(&q3);
    println!(
        "Q3  select max(B), count(B) where 2 < A < 12 -> max = {:?}, count = {:?}",
        out.aggs[0], out.aggs[1]
    );
    println!("\nEach query physically reorganized the cracker map a little more;");
    println!("future queries over A reuse that knowledge (self-organization).");

    // The same engine scales out behind the sharding router: the table
    // is split row-wise, every shard cracks its own fraction in
    // parallel, and answers merge deterministically (sums of counts,
    // min/max of min/max, averages from merged sums and counts).
    let mut sharded = ShardedEngine::build(table, 3, |_, part| SidewaysEngine::new(part, (0, 30)));
    let out = sharded.select(&q3);
    println!(
        "\nSharded x3 ({}): max = {:?}, count = {:?}  (identical answers)",
        sharded.name(),
        out.aggs[0],
        out.aggs[1]
    );
}
