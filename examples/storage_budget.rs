//! Partial sideways cracking under a tight storage budget (§4): an
//! embedded / edge deployment where auxiliary index memory is capped at a
//! fraction of the data size, yet the workload keeps shifting.
//!
//! Run with `cargo run --release --example storage_budget`.

use crackdb::columnstore::{RangePred, Val};
use crackdb::engine::{Engine, PartialEngine, SelectQuery, SidewaysEngine};
use crackdb::workloads::random_table;
use crackdb_rng::rngs::StdRng;
use crackdb_rng::{Rng, SeedableRng};
use std::time::Instant;

const N: usize = 400_000;
const ATTRS: usize = 9;

fn main() {
    let domain = N as Val;
    let table = random_table(ATTRS, N, domain, 11);
    // Budget: 1.5 columns' worth of tuples — far less than the 8 maps the
    // workload would like to materialize in full.
    let budget = N * 3 / 2;

    let mut rng = StdRng::seed_from_u64(12);
    let mut make_query = |proj: usize| {
        let lo = rng.gen_range(0..domain - domain / 50);
        SelectQuery::project(vec![(0, RangePred::open(lo, lo + domain / 50))], vec![proj])
    };

    // The workload cycles through projection attributes in phases.
    let schedule: Vec<SelectQuery> = (0..400)
        .map(|i| make_query(1 + (i / 50) % (ATTRS - 1)))
        .collect();

    println!(
        "Workload: 400 selective queries cycling over {} projection attributes",
        ATTRS - 1
    );
    println!(
        "Budget:   {budget} tuples (full maps would need {})\n",
        N * (ATTRS - 1)
    );

    let mut partial = PartialEngine::new(table.clone(), (0, domain), Some(budget));
    let mut full = SidewaysEngine::new(table.clone(), (0, domain));
    full.set_budget(Some(budget));

    let mut t_partial = 0.0;
    let mut t_full = 0.0;
    for (i, q) in schedule.iter().enumerate() {
        let t0 = Instant::now();
        let a = partial.select(q);
        t_partial += t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let b = full.select(q);
        t_full += t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(a.rows, b.rows, "engines disagree");
        if (i + 1) % 100 == 0 {
            println!(
                "after {:>3} queries: partial {:>8} tuples ({} chunks, {} dropped) | full maps {:>8} tuples",
                i + 1,
                partial.aux_tuples(),
                partial.store().set(0).map_or(0, |s| s.chunk_count()),
                partial.store().set(0).map_or(0, |s| s.stats.chunks_dropped),
                full.aux_tuples(),
            );
        }
    }
    println!("\ntotal time: partial {t_partial:.1} ms, full maps {t_full:.1} ms");
    println!("Partial maps keep only the hot chunks, never exceed the budget, and");
    println!("avoid the full-map recreation spikes at every workload phase change.");
}
