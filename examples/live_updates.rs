//! Continuous queries over a table receiving a live update stream (§3.5,
//! Exp6): inserts and deletes arrive in bursts while range queries keep
//! coming; sideways cracking merges updates on demand with the Ripple
//! algorithm and keeps its self-organized speed.
//!
//! Run with `cargo run --release --example live_updates`.

use crackdb::columnstore::{AggFunc, RangePred, Val};
use crackdb::engine::{Engine, PlainEngine, SelectQuery, SidewaysEngine};
use crackdb::workloads::random_table;
use crackdb_rng::rngs::StdRng;
use crackdb_rng::{Rng, SeedableRng};
use std::time::Instant;

const N: usize = 300_000;

fn main() {
    let domain = N as Val;
    let table = random_table(3, N, domain, 5);
    let mut sideways = SidewaysEngine::new(table.clone(), (0, domain));
    let mut plain = PlainEngine::new(table.clone());

    let mut rng = StdRng::seed_from_u64(6);
    let mut live: Vec<u32> = (0..N as u32).collect();
    let mut next_key = N as u32;

    println!("300 queries with a burst of 50 updates every 25 queries\n");
    println!(
        "{:>6}{:>16}{:>16}{:>10}",
        "query", "sideways_us", "plain_us", "agree"
    );
    let mut t_side = 0.0;
    let mut t_plain = 0.0;
    for i in 0..300 {
        if i > 0 && i % 25 == 0 {
            for _ in 0..50 {
                let row = [
                    rng.gen_range(1..=domain),
                    rng.gen_range(1..=domain),
                    rng.gen_range(1..=domain),
                ];
                sideways.insert(&row);
                plain.insert(&row);
                live.push(next_key);
                next_key += 1;
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                sideways.delete(victim);
                plain.delete(victim);
            }
        }
        let lo = rng.gen_range(1..domain - domain / 10);
        let q = SelectQuery::aggregate(
            vec![(0, RangePred::open(lo, lo + domain / 10))],
            vec![(1, AggFunc::Max), (2, AggFunc::Sum)],
        );
        let t0 = Instant::now();
        let a = sideways.select(&q);
        let us_s = t0.elapsed().as_secs_f64() * 1e6;
        let t1 = Instant::now();
        let b = plain.select(&q);
        let us_p = t1.elapsed().as_secs_f64() * 1e6;
        t_side += us_s;
        t_plain += us_p;
        assert_eq!(a.aggs, b.aggs, "query {i}: engines disagree after updates");
        if i % 25 == 0 || i == 299 {
            println!("{:>6}{:>16.1}{:>16.1}{:>10}", i + 1, us_s, us_p, "yes");
        }
    }
    println!(
        "\ntotals: sideways {:.1} ms vs plain {:.1} ms — identical answers throughout,",
        t_side / 1e3,
        t_plain / 1e3
    );
    println!("with updates merged lazily into exactly the value ranges queries touch.");
}
