//! The paper's three worked examples, executed step by step:
//! Figure 1 (simple selection cracking of a map), Figure 2 (adaptive
//! alignment across multi-projection queries), Figure 3 (bit-vector
//! evaluation of a conjunctive multi-selection query).

use crackdb::columnstore::{Column, RangePred, Table, Val};
use crackdb::core::MapSet;
use std::collections::HashSet;

fn sorted(mut v: Vec<Val>) -> Vec<Val> {
    v.sort_unstable();
    v
}

/// Figure 1: R(A, B), two successive range selections on A; the second
/// only refines the outer pieces.
#[test]
fn figure1_trace() {
    let mut t = Table::new();
    t.add_column(
        "A",
        Column::new(vec![12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16]),
    );
    // B values b1..b13 encoded as 1..13.
    t.add_column("B", Column::new((1..=13).collect()));
    let mut s = MapSet::new(0, t.num_rows(), HashSet::new());

    // select B from R where 10 < A < 15 → {b1, b12}.
    let r = s.sideways_select(&t, 1, &RangePred::open(10, 15));
    assert_eq!(sorted(s.view_tail(1, r).to_vec()), vec![1, 12]);
    // The map is now cracked into three pieces.
    assert_eq!(s.map(1).unwrap().arr.index().len(), 2);

    // select B from R where 5 <= A < 17 → {b3,b4,b7,b1,b12,b5,b13}.
    let r = s.sideways_select(&t, 1, &RangePred::half_open(5, 17));
    assert_eq!(
        sorted(s.view_tail(1, r).to_vec()),
        vec![1, 3, 4, 5, 7, 12, 13]
    );
    // Two more boundaries (5 and 17); the middle piece was reused as is.
    assert_eq!(s.map(1).unwrap().arr.index().len(), 4);
}

/// Figure 2: three queries over R(A,B,C); with adaptive alignment the
/// third query's B and C results are positionally aligned.
#[test]
fn figure2_trace() {
    let mut t = Table::new();
    t.add_column("A", Column::new(vec![7, 4, 1, 2, 8, 3, 6]));
    // b1..b7 ≡ 1..7, c1..c7 ≡ 101..107.
    t.add_column("B", Column::new((1..=7).collect()));
    t.add_column("C", Column::new((101..=107).collect()));
    let mut s = MapSet::new(0, 7, HashSet::new());
    let lt = |v| RangePred::less(crackdb::columnstore::Bound::exclusive(v));

    // Q1: select B where A < 3 → {b3, b4}.
    let r = s.sideways_select(&t, 1, &lt(3));
    assert_eq!(sorted(s.view_tail(1, r).to_vec()), vec![3, 4]);

    // Q2: select C where A < 5 → {c2, c3, c4, c6}.
    let r = s.sideways_select(&t, 2, &lt(5));
    assert_eq!(sorted(s.view_tail(2, r).to_vec()), vec![102, 103, 104, 106]);

    // Q3: select B, C where A < 4 → {(b3,c3),(b4,c4),(b6,c6)} — and the
    // two result views must be positionally aligned (same tuple at the
    // same offset), which is exactly what Figure 2's "with alignment"
    // panel demonstrates.
    let rb = s.sideways_select(&t, 1, &lt(4));
    let rc = s.sideways_select(&t, 2, &lt(4));
    assert_eq!(rb, rc);
    let b = s.view_tail(1, rb).to_vec();
    let c = s.view_tail(2, rc).to_vec();
    assert_eq!(sorted(b.clone()), vec![3, 4, 6]);
    for (bv, cv) in b.iter().zip(&c) {
        assert_eq!(bv + 100, *cv, "b{bv} must pair with c{bv}");
    }
}

/// Figure 3: conjunctive multi-selection evaluated with aligned maps and
/// a bit vector: select D from R where 3<A<10 and 4<B<8 and 1<C<7.
#[test]
fn figure3_trace() {
    let mut t = Table::new();
    t.add_column("A", Column::new(vec![12, 3, 5, 9, 8, 22, 7, 26, 4, 2, 7]));
    t.add_column("B", Column::new(vec![9, 2, 6, 10, 7, 11, 16, 2, 5, 8, 3]));
    t.add_column("C", Column::new(vec![3, 6, 2, 1, 6, 9, 12, 2, 11, 17, 3]));
    t.add_column("D", Column::new(vec![9, 4, 2, 10, 12, 19, 3, 6, 5, 8, 1]));
    let mut s = MapSet::new(0, t.num_rows(), HashSet::new());

    let a_pred = RangePred::open(3, 10);
    let b_pred = RangePred::open(4, 8);
    let c_pred = RangePred::open(1, 7);

    // select_create_bv over M_AB, refine over M_AC, reconstruct M_AD.
    let (_, mut bv) = s.select_create_bv(&t, 1, &a_pred, &b_pred);
    s.select_refine_bv(&t, 2, &a_pred, &c_pred, &mut bv);
    let mut result = Vec::new();
    s.reconstruct_with(&t, 3, &a_pred, &bv, |v| result.push(v));

    // Naive check: rows with 3<A<10, 4<B<8, 1<C<7.
    let expected: Vec<Val> = (0..t.num_rows() as u32)
        .filter(|&i| {
            a_pred.matches(t.column(0).get(i))
                && b_pred.matches(t.column(1).get(i))
                && c_pred.matches(t.column(2).get(i))
        })
        .map(|i| t.column(3).get(i))
        .collect();
    assert_eq!(sorted(result), sorted(expected.clone()));
    // The paper's example yields exactly two qualifying tuples.
    assert_eq!(expected.len(), 2);
}
