//! Workspace-level end-to-end tests: full pipelines across all crates,
//! from workload generation through every engine to result equality.

use crackdb::columnstore::{AggFunc, Val};
use crackdb::engine::tpch::queries::{run, QUERIES};
use crackdb::engine::tpch::{Mode, TpchExecutor};
use crackdb::engine::{
    Engine, PartialEngine, PlainEngine, PresortedEngine, SelCrackEngine, SelectQuery,
    SidewaysEngine,
};
use crackdb::workloads::tpch::{TpchData, TpchParams};
use crackdb::workloads::{random_table, QiGen, RangeGen};

#[test]
fn exp1_pipeline_all_systems_agree() {
    let n = 20_000;
    let domain = n as Val;
    let table = random_table(9, n, domain, 1);
    let mut systems: Vec<Box<dyn Engine>> = vec![
        Box::new(PlainEngine::new(table.clone())),
        Box::new(PresortedEngine::new(table.clone(), &[0])),
        Box::new(SelCrackEngine::new(table.clone(), (0, domain))),
        Box::new(SidewaysEngine::new(table.clone(), (0, domain))),
        Box::new(PartialEngine::new(table.clone(), (0, domain), None)),
    ];
    let mut gen = RangeGen::with_selectivity(domain, 0.2, 2);
    for _ in 0..25 {
        let pred = gen.next();
        let q = SelectQuery::aggregate(
            vec![(0, pred)],
            (1..=8).map(|a| (a, AggFunc::Max)).collect(),
        );
        let reference = systems[0].select(&q);
        for sys in &mut systems[1..] {
            let out = sys.select(&q);
            assert_eq!(out.rows, reference.rows, "{} rows", sys.name());
            assert_eq!(out.aggs, reference.aggs, "{} aggs", sys.name());
        }
    }
}

#[test]
fn qi_workload_full_vs_partial_vs_plain() {
    let n = 30_000;
    let domain = n as Val;
    let table = random_table(QiGen::attrs_needed(3), n, domain, 3);
    let mut gen = QiGen::new(domain, n, n / 100, 3, 4);
    let mut plain = PlainEngine::new(table.clone());
    let mut full = SidewaysEngine::new(table.clone(), (0, domain));
    let mut partial = PartialEngine::new(table.clone(), (0, domain), Some(n * 2));
    for i in 0..60 {
        let qi = gen.query(i % 3);
        let q = SelectQuery::project(vec![(0, qi.a_pred), qi.b], vec![qi.c]);
        let a = plain.select(&q);
        let b = full.select(&q);
        let c = partial.select(&q);
        assert_eq!(a.rows, b.rows, "query {i} full");
        assert_eq!(a.rows, c.rows, "query {i} partial");
        let mut va = a.proj_values[0].clone();
        let mut vb = b.proj_values[0].clone();
        let mut vc = c.proj_values[0].clone();
        va.sort_unstable();
        vb.sort_unstable();
        vc.sort_unstable();
        assert_eq!(va, vb);
        assert_eq!(va, vc);
    }
    assert!(
        partial.aux_tuples() <= n * 2 + n,
        "partial budget respected"
    );
}

#[test]
fn tpch_tiny_all_modes_agree_over_sequences() {
    let data = TpchData::generate(0.001, 5);
    let mut pgen = TpchParams::new(6);
    let plan: Vec<(u32, crackdb::workloads::tpch::Params)> = QUERIES
        .iter()
        .flat_map(|&q| {
            (0..3)
                .map(|_| {
                    let prm = match q {
                        1 => pgen.q1(),
                        3 => pgen.q3(),
                        4 => pgen.q4(),
                        6 => pgen.q6(),
                        7 => pgen.q7(),
                        8 => pgen.q8(),
                        10 => pgen.q10(),
                        12 => pgen.q12(),
                        14 => pgen.q14(),
                        15 => pgen.q15(),
                        19 => pgen.q19(),
                        20 => pgen.q20(),
                        _ => unreachable!(),
                    };
                    (q, prm)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let mut reference: Option<Vec<Val>> = None;
    for mode in [
        Mode::Plain,
        Mode::Presorted,
        Mode::SelCrack,
        Mode::Sideways,
        Mode::RowStore,
    ] {
        let mut exec = TpchExecutor::new(data.clone(), mode);
        let digests: Vec<Val> = plan
            .iter()
            .map(|&(q, prm)| run(&mut exec, q, prm))
            .collect();
        match &reference {
            None => reference = Some(digests),
            Some(r) => assert_eq!(&digests, r, "mode {mode:?}"),
        }
    }
}

#[test]
fn update_heavy_session_stays_consistent() {
    let n = 10_000;
    let domain = n as Val;
    let table = random_table(3, n, domain, 7);
    let mut plain = PlainEngine::new(table.clone());
    let mut sideways = SidewaysEngine::new(table.clone(), (0, domain));
    let mut gen = RangeGen::with_selectivity(domain, 0.1, 8);
    let mut live: Vec<u32> = (0..n as u32).collect();
    let mut next = n as u32;
    for i in 0..200 {
        if i % 5 == 0 {
            let row = [gen.value(), gen.value(), gen.value()];
            plain.insert(&row);
            sideways.insert(&row);
            live.push(next);
            next += 1;
            let victim = live.swap_remove(gen.index(live.len()));
            plain.delete(victim);
            sideways.delete(victim);
        }
        let q = SelectQuery::aggregate(
            vec![(0, gen.next())],
            vec![(1, AggFunc::Count), (1, AggFunc::Max), (2, AggFunc::Sum)],
        );
        assert_eq!(plain.select(&q).aggs, sideways.select(&q).aggs, "query {i}");
    }
}

#[test]
fn skewed_workload_converges() {
    // Not a performance assertion (CI noise), but the cracking knowledge
    // must accumulate: later queries crack strictly less.
    let n = 50_000;
    let domain = n as Val;
    let table = random_table(3, n, domain, 9);
    let mut sideways = SidewaysEngine::new(table, (0, domain));
    let mut gen = RangeGen::with_selectivity(domain, 0.2, 10);
    let mut early_cracks = 0;
    let mut late_cracks = 0;
    for i in 0..100 {
        let pred = gen.next_skewed(0.9, 0.5);
        let q = SelectQuery::aggregate(vec![(0, pred)], vec![(1, AggFunc::Max)]);
        let before = sideways
            .store()
            .set(0)
            .map(|s| s.stats.query_cracks)
            .unwrap_or(0);
        sideways.select(&q);
        let after = sideways
            .store()
            .set(0)
            .expect("set exists")
            .stats
            .query_cracks;
        if i < 10 {
            early_cracks += after - before;
        }
        if i >= 90 {
            late_cracks += after - before;
        }
    }
    assert!(
        late_cracks <= early_cracks,
        "cracking must subside: early {early_cracks}, late {late_cracks}"
    );
}
