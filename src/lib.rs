#![warn(missing_docs)]
//! # crackdb
//!
//! A from-scratch Rust reproduction of *"Self-organizing Tuple
//! Reconstruction in Column-stores"* (Stratos Idreos, Martin L. Kersten,
//! Stefan Manegold; SIGMOD 2009): **sideways cracking** and **partial
//! sideways cracking** on top of a MonetDB-style column-store substrate,
//! together with every baseline the paper compares against and the full
//! experiment harness that regenerates its tables and figures.
//!
//! ## Crates
//!
//! * [`columnstore`] — BAT storage model, two-column physical algebra,
//!   presorted and row-store baselines, radix-cluster reordering.
//! * [`cracking`] — selection cracking: AVL cracker index, crack-in-two /
//!   crack-in-three kernels, cracker columns, ripple updates.
//! * [`core`] — the paper's contribution: cracker maps, map sets, tapes,
//!   adaptive alignment, bit-vector multi-selection plans, self-organizing
//!   histograms, and §4's chunked partial maps with storage management.
//! * [`workloads`] — synthetic workload generators (random / sequential
//!   / skewed patterns) and the TPC-H substrate (data + query
//!   parameters).
//! * [`engine`] — one query executor per physical design behind a shared
//!   access-path + batch-execution layer (`engine::exec`), the
//!   `ShardedEngine` partition-parallel router and the `Service`
//!   concurrent query service on top of it, plus the twelve TPC-H query
//!   plans over a mode-parametric access layer.
//!
//! The workspace builds fully offline with zero external dependencies;
//! `crackdb-rng` (a dev-dependency here) provides the deterministic PRNG
//! the workloads and tests use in place of `rand`.
//!
//! ## Quickstart
//!
//! ```
//! use crackdb::engine::{Engine, SelectQuery, SidewaysEngine};
//! use crackdb::columnstore::{Column, Table, RangePred, AggFunc};
//!
//! let mut table = Table::new();
//! table.add_column("a", Column::new(vec![12, 3, 5, 9, 15, 22, 7]));
//! table.add_column("b", Column::new(vec![1, 2, 3, 4, 5, 6, 7]));
//!
//! let mut engine = SidewaysEngine::new(table, (0, 30));
//! let q = SelectQuery::aggregate(
//!     vec![(0, RangePred::open(4, 14))],
//!     vec![(1, AggFunc::Max)],
//! );
//! let out = engine.select(&q);
//! assert_eq!(out.aggs, vec![Some(7)]); // max(b) where 4 < a < 14
//! ```
//!
//! ## Serving concurrent clients
//!
//! Adaptive indexing makes every query a write (selection *reorganizes*
//! the columns), so an engine value serves one query at a time. The
//! [`engine::Service`] layer removes that limit share-nothing-style: it
//! moves every shard of a [`engine::ShardedEngine`] onto its own
//! long-lived worker thread and hands out cheap, cloneable
//! [`engine::Client`] handles. Calls are globally sequenced (each reply
//! carries its sequence number), so every session observes its own
//! writes and a concurrent run replays bit-identically on a serial
//! engine; admission control bounds the queue depth, and a graceful
//! shutdown drains in-flight queries and returns the engine.
//!
//! ```
//! use crackdb::engine::{Engine, Service, SelectQuery, ShardedEngine, SidewaysEngine};
//! use crackdb::columnstore::{Column, Table, RangePred, AggFunc};
//!
//! let mut table = Table::new();
//! table.add_column("a", Column::new(vec![12, 3, 5, 9, 15, 22, 7]));
//! table.add_column("b", Column::new(vec![1, 2, 3, 4, 5, 6, 7]));
//!
//! let sharded = ShardedEngine::build(table, 2, |_, part| SidewaysEngine::new(part, (0, 30)));
//! let service = Service::start(sharded).expect("valid startup configuration");
//!
//! // One clone per session; handles are usable from any thread.
//! let client = service.client();
//! let q = SelectQuery::aggregate(
//!     vec![(0, RangePred::open(4, 14))],
//!     vec![(1, AggFunc::Max)],
//! );
//! let reply = client.select(&q).expect("admitted");
//! assert_eq!(reply.output.aggs, vec![Some(7)]);
//!
//! // Sessions read their own writes: the insert's key comes back, the
//! // next select is sequenced after it.
//! let w = client.insert(&[10, 9]).expect("admitted");
//! assert_eq!(w.key, Some(7)); // 7 original rows, first insert
//! let reply = client.select(&q).expect("admitted");
//! assert_eq!(reply.output.aggs, vec![Some(9)]);
//! assert!(reply.seq > w.seq);
//!
//! // Graceful shutdown drains in-flight queries and hands the
//! // (reorganized) sharded engine back.
//! let mut engine = service.shutdown();
//! assert_eq!(engine.select(&q).aggs, vec![Some(9)]);
//! ```

pub use crackdb_columnstore as columnstore;
pub use crackdb_core as core;
pub use crackdb_cracking as cracking;
pub use crackdb_engine as engine;
pub use crackdb_workloads as workloads;
