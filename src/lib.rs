#![warn(missing_docs)]
//! # crackdb
//!
//! A from-scratch Rust reproduction of *"Self-organizing Tuple
//! Reconstruction in Column-stores"* (Stratos Idreos, Martin L. Kersten,
//! Stefan Manegold; SIGMOD 2009): **sideways cracking** and **partial
//! sideways cracking** on top of a MonetDB-style column-store substrate,
//! together with every baseline the paper compares against and the full
//! experiment harness that regenerates its tables and figures.
//!
//! ## Crates
//!
//! * [`columnstore`] — BAT storage model, two-column physical algebra,
//!   presorted and row-store baselines, radix-cluster reordering.
//! * [`cracking`] — selection cracking: AVL cracker index, crack-in-two /
//!   crack-in-three kernels, cracker columns, ripple updates.
//! * [`core`] — the paper's contribution: cracker maps, map sets, tapes,
//!   adaptive alignment, bit-vector multi-selection plans, self-organizing
//!   histograms, and §4's chunked partial maps with storage management.
//! * [`workloads`] — synthetic workload generators (random / sequential
//!   / skewed patterns) and the TPC-H substrate (data + query
//!   parameters).
//! * [`engine`] — one query executor per physical design behind a shared
//!   access-path + batch-execution layer (`engine::exec`), plus the
//!   twelve TPC-H query plans over a mode-parametric access layer.
//!
//! The workspace builds fully offline with zero external dependencies;
//! `crackdb-rng` (a dev-dependency here) provides the deterministic PRNG
//! the workloads and tests use in place of `rand`.
//!
//! ## Quickstart
//!
//! ```
//! use crackdb::engine::{Engine, SelectQuery, SidewaysEngine};
//! use crackdb::columnstore::{Column, Table, RangePred, AggFunc};
//!
//! let mut table = Table::new();
//! table.add_column("a", Column::new(vec![12, 3, 5, 9, 15, 22, 7]));
//! table.add_column("b", Column::new(vec![1, 2, 3, 4, 5, 6, 7]));
//!
//! let mut engine = SidewaysEngine::new(table, (0, 30));
//! let q = SelectQuery::aggregate(
//!     vec![(0, RangePred::open(4, 14))],
//!     vec![(1, AggFunc::Max)],
//! );
//! let out = engine.select(&q);
//! assert_eq!(out.aggs, vec![Some(7)]); // max(b) where 4 < a < 14
//! ```

pub use crackdb_columnstore as columnstore;
pub use crackdb_core as core;
pub use crackdb_cracking as cracking;
pub use crackdb_engine as engine;
pub use crackdb_workloads as workloads;
